package intersect

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"confaudit/internal/mathx"
	"confaudit/internal/transport"
)

func runParties(t *testing.T, cfg Config, sets map[string][][]byte) map[string]*Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck

	results := make(map[string]*Result, len(cfg.Ring))
	errs := make(map[string]error, len(cfg.Ring))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, node := range cfg.Ring {
		ep, err := net.Endpoint(node)
		if err != nil {
			t.Fatal(err)
		}
		mb := transport.NewMailbox(ep)
		defer mb.Close() //nolint:errcheck
		wg.Add(1)
		go func(node string, mb *transport.Mailbox) {
			defer wg.Done()
			res, err := Run(ctx, mb, cfg, sets[node])
			mu.Lock()
			defer mu.Unlock()
			results[node] = res
			errs[node] = err
		}(node, mb)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("party %s: %v", node, err)
		}
	}
	return results
}

func sortedStrings(bs [][]byte) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

// TestFigure4Exact reproduces the paper's Figure 4: S1={c,d,e},
// S2={d,e,f}, S3={e,f,g}; the intersection is exactly {e}.
func TestFigure4Exact(t *testing.T) {
	cfg := Config{
		Group:     mathx.Oakley768,
		Ring:      []string{"P1", "P2", "P3"},
		Receivers: []string{"P1", "P2", "P3"},
		Session:   "fig4",
	}
	sets := map[string][][]byte{
		"P1": {[]byte("c"), []byte("d"), []byte("e")},
		"P2": {[]byte("d"), []byte("e"), []byte("f")},
		"P3": {[]byte("e"), []byte("f"), []byte("g")},
	}
	results := runParties(t, cfg, sets)
	for node, res := range results {
		got := sortedStrings(res.Plaintext)
		if len(got) != 1 || got[0] != "e" {
			t.Fatalf("%s intersection = %v, want [e]", node, got)
		}
		if len(res.Encrypted) != 1 {
			t.Fatalf("%s encrypted intersection size = %d", node, len(res.Encrypted))
		}
	}
	// E132(e) = E321(e) = E213(e): all receivers computed the identical
	// fully-encrypted representative within one run.
	var want string
	for _, res := range results {
		got := string(res.Encrypted[0])
		if want == "" {
			want = got
		} else if got != want {
			t.Fatal("receivers disagree on the fully-encrypted common element")
		}
	}
}

func TestIntersectionVariousShapes(t *testing.T) {
	cases := []struct {
		name string
		sets map[string][][]byte
		want []string
	}{
		{
			name: "empty intersection",
			sets: map[string][][]byte{
				"P1": {[]byte("a"), []byte("b")},
				"P2": {[]byte("c"), []byte("d")},
				"P3": {[]byte("e")},
			},
			want: []string{},
		},
		{
			name: "all equal",
			sets: map[string][][]byte{
				"P1": {[]byte("x"), []byte("y")},
				"P2": {[]byte("y"), []byte("x")},
				"P3": {[]byte("x"), []byte("y")},
			},
			want: []string{"x", "y"},
		},
		{
			name: "one empty set",
			sets: map[string][][]byte{
				"P1": {},
				"P2": {[]byte("a")},
				"P3": {[]byte("a")},
			},
			want: []string{},
		},
		{
			name: "duplicates within a set",
			sets: map[string][][]byte{
				"P1": {[]byte("a"), []byte("a"), []byte("b")},
				"P2": {[]byte("a"), []byte("b")},
				"P3": {[]byte("b"), []byte("a")},
			},
			want: []string{"a", "b"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Group:     mathx.Oakley768,
				Ring:      []string{"P1", "P2", "P3"},
				Receivers: []string{"P2"},
				Session:   "s-" + tc.name,
			}
			results := runParties(t, cfg, tc.sets)
			got := sortedStrings(results["P2"].Plaintext)
			if len(got) != len(tc.want) {
				t.Fatalf("intersection = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("intersection = %v, want %v", got, tc.want)
				}
			}
			// Non-receivers learn nothing.
			for _, node := range []string{"P1", "P3"} {
				if len(results[node].Plaintext) != 0 || len(results[node].Encrypted) != 0 {
					t.Fatalf("non-receiver %s obtained a result", node)
				}
			}
		})
	}
}

func TestTwoPartyIntersection(t *testing.T) {
	cfg := Config{
		Group:     mathx.Oakley768,
		Ring:      []string{"A", "B"},
		Receivers: []string{"A"},
		Session:   "two",
	}
	sets := map[string][][]byte{
		"A": {[]byte("139aef78"), []byte("139aef80"), []byte("139aef81")},
		"B": {[]byte("139aef80"), []byte("139aef82")},
	}
	results := runParties(t, cfg, sets)
	got := sortedStrings(results["A"].Plaintext)
	if len(got) != 1 || got[0] != "139aef80" {
		t.Fatalf("intersection = %v, want [139aef80]", got)
	}
}

func TestFivePartyLargeSets(t *testing.T) {
	ring := []string{"P0", "P1", "P2", "P3", "P4"}
	sets := make(map[string][][]byte, len(ring))
	// Every party holds 0..19+idx; intersection is 0..19.
	for idx, node := range ring {
		var s [][]byte
		for v := 0; v < 20+idx; v++ {
			s = append(s, []byte(fmt.Sprintf("el-%03d", v)))
		}
		sets[node] = s
	}
	cfg := Config{
		Group:     mathx.Oakley768,
		Ring:      ring,
		Receivers: []string{"P0", "P4"},
		Session:   "five",
	}
	results := runParties(t, cfg, sets)
	for _, r := range []string{"P0", "P4"} {
		if len(results[r].Plaintext) != 20 {
			t.Fatalf("%s intersection size = %d, want 20", r, len(results[r].Plaintext))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ctx := context.Background()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ep, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	mb := transport.NewMailbox(ep)
	defer mb.Close() //nolint:errcheck

	base := Config{
		Group:     mathx.Oakley768,
		Ring:      []string{"A", "B"},
		Receivers: []string{"A"},
		Session:   "v",
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil group", func(c *Config) { c.Group = nil }},
		{"short ring", func(c *Config) { c.Ring = []string{"A"} }},
		{"dup ring", func(c *Config) { c.Ring = []string{"A", "A"} }},
		{"no receivers", func(c *Config) { c.Receivers = nil }},
		{"foreign receiver", func(c *Config) { c.Receivers = []string{"Z"} }},
		{"empty session", func(c *Config) { c.Session = "" }},
		{"self not in ring", func(c *Config) { c.Ring = []string{"B", "C"}; c.Receivers = []string{"B"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Ring = append([]string(nil), base.Ring...)
			cfg.Receivers = append([]string(nil), base.Receivers...)
			tc.mutate(&cfg)
			if _, err := Run(ctx, mb, cfg, nil); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func BenchmarkIntersect3Party(b *testing.B)  { benchIntersect(b, 3, 16) }
func BenchmarkIntersect5Party(b *testing.B)  { benchIntersect(b, 5, 16) }
func BenchmarkIntersect3x64Set(b *testing.B) { benchIntersect(b, 3, 64) }

func benchIntersect(b *testing.B, parties, setSize int) {
	ctx := context.Background()
	ring := make([]string, parties)
	sets := make(map[string][][]byte, parties)
	for i := range ring {
		ring[i] = fmt.Sprintf("P%d", i)
		s := make([][]byte, setSize)
		for j := range s {
			s[j] = []byte(fmt.Sprintf("common-%04d", j))
		}
		sets[ring[i]] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := transport.NewMemNetwork()
		cfg := Config{
			Group:     mathx.Oakley768,
			Ring:      ring,
			Receivers: []string{ring[0]},
			Session:   fmt.Sprintf("bench-%d", i),
		}
		var wg sync.WaitGroup
		for _, node := range ring {
			ep, err := net.Endpoint(node)
			if err != nil {
				b.Fatal(err)
			}
			mb := transport.NewMailbox(ep)
			wg.Add(1)
			go func(node string, mb *transport.Mailbox) {
				defer wg.Done()
				defer mb.Close() //nolint:errcheck
				if _, err := Run(ctx, mb, cfg, sets[node]); err != nil {
					b.Error(err)
				}
			}(node, mb)
		}
		wg.Wait()
		net.Close() //nolint:errcheck
	}
}
