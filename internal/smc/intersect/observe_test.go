package intersect

import (
	"context"
	"sync"
	"testing"
	"time"

	"confaudit/internal/mathx"
	"confaudit/internal/transport"
)

// TestObserveCardinality checks the size-only variant: an observer that
// holds no raw data learns |S1 ∩ S2 ∩ S3| and nothing else.
func TestObserveCardinality(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck

	cfg := Config{
		Group:     mathx.Oakley768,
		Ring:      []string{"P1", "P2", "P3"},
		Receivers: []string{"P1"},
		Observers: []string{"O"},
		Session:   "obs",
	}
	sets := map[string][][]byte{
		"P1": {[]byte("c"), []byte("d"), []byte("e")},
		"P2": {[]byte("d"), []byte("e"), []byte("f")},
		"P3": {[]byte("e"), []byte("f"), []byte("g"), []byte("d")},
	}
	mbs := make(map[string]*transport.Mailbox)
	for _, id := range []string{"P1", "P2", "P3", "O"} {
		ep, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		mbs[id] = transport.NewMailbox(ep)
		defer mbs[id].Close() //nolint:errcheck
	}
	var (
		wg    sync.WaitGroup
		size  int
		obErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		size, obErr = Observe(ctx, mbs["O"], cfg)
	}()
	for _, node := range cfg.Ring {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			if _, err := Run(ctx, mbs[node], cfg, sets[node]); err != nil {
				t.Errorf("%s: %v", node, err)
			}
		}(node)
	}
	wg.Wait()
	if obErr != nil {
		t.Fatal(obErr)
	}
	// {d, e} is common to all three sets.
	if size != 2 {
		t.Fatalf("observed cardinality %d, want 2", size)
	}
}

func TestObserveRejectsNonObserver(t *testing.T) {
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ep, err := net.Endpoint("X")
	if err != nil {
		t.Fatal(err)
	}
	mb := transport.NewMailbox(ep)
	defer mb.Close() //nolint:errcheck
	cfg := Config{
		Group:     mathx.Oakley768,
		Ring:      []string{"P1", "P2"},
		Receivers: []string{"P1"},
		Observers: []string{"O"},
		Session:   "obs2",
	}
	if _, err := Observe(context.Background(), mb, cfg); err == nil {
		t.Fatal("non-observer accepted")
	}
}
