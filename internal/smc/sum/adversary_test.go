package sum

import (
	"context"
	"math/big"
	"testing"
	"time"

	"confaudit/internal/smc"
	"confaudit/internal/transport"
)

// TestWrongAbscissaShareRejected has a malicious dealer send a share
// evaluated at the wrong abscissa; the receiving party must reject it
// (folding it in would silently corrupt the sum).
func TestWrongAbscissaShareRejected(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck

	cfg := Config{
		P:         testPrime,
		Parties:   []string{"A", "M"},
		K:         2,
		Receivers: []string{"A"},
		Session:   "adv",
	}
	aEp, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	mEp, err := net.Endpoint("M")
	if err != nil {
		t.Fatal(err)
	}
	aMB, mMB := transport.NewMailbox(aEp), transport.NewMailbox(mEp)
	defer aMB.Close() //nolint:errcheck
	defer mMB.Close() //nolint:errcheck

	errc := make(chan error, 1)
	go func() {
		_, err := Run(ctx, aMB, cfg, big.NewInt(5))
		errc <- err
	}()
	// Mallory skips the protocol and sends A a share at the wrong x
	// (A's abscissa is 1; Mallory claims x=7).
	bad := shareBody{X: smc.EncodeBig(big.NewInt(7)), Y: smc.EncodeBig(big.NewInt(123))}
	msg, err := transport.NewMessage("A", "sum.share", "adv", bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := mMB.Send(ctx, msg); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("wrong-abscissa share accepted")
		}
	case <-time.After(8 * time.Second):
		t.Fatal("party never decided")
	}
}

// TestGarbageShareRejected sends an undecodable share.
func TestGarbageShareRejected(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	cfg := Config{
		P:         testPrime,
		Parties:   []string{"A", "M"},
		K:         2,
		Receivers: []string{"A"},
		Session:   "garbage",
	}
	aEp, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	mEp, err := net.Endpoint("M")
	if err != nil {
		t.Fatal(err)
	}
	aMB, mMB := transport.NewMailbox(aEp), transport.NewMailbox(mEp)
	defer aMB.Close() //nolint:errcheck
	defer mMB.Close() //nolint:errcheck

	errc := make(chan error, 1)
	go func() {
		_, err := Run(ctx, aMB, cfg, big.NewInt(5))
		errc <- err
	}()
	msg, err := transport.NewMessage("A", "sum.share", "garbage", shareBody{X: "", Y: "!!"})
	if err != nil {
		t.Fatal(err)
	}
	if err := mMB.Send(ctx, msg); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("garbage share accepted")
		}
	case <-time.After(8 * time.Second):
		t.Fatal("party never decided")
	}
}
