// Package sum implements the paper's secure sum Σs (§3.5): n nodes with
// local values a_0..a_{n-1} compute a_0+...+a_{n-1} (optionally the
// weighted sum Σ α_i a_i for public constants α_i) without revealing any
// individual value.
//
// The construction is exactly the paper's: each node P_i picks a random
// polynomial f_i over Z_p of degree ≤ k-1 with f_i(0) = a_i and deals
// the share s_ij = f_i(x_j) to node P_j. Each P_j adds the shares it
// received, obtaining a share (x_j, F(x_j)) of the summed polynomial
// F = Σ f_i, whose constant term is the total. Any k aggregated shares
// interpolate F(0) = Σ a_i. The receivers collect k shares and
// reconstruct; no subset of fewer than k nodes learns anything beyond
// its own inputs.
package sum

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"confaudit/internal/crypto/shamir"
	"confaudit/internal/smc"
	"confaudit/internal/transport"
	"confaudit/internal/workpool"
)

// Message types on the wire.
const (
	msgShare = "sum.share"
	msgAgg   = "sum.agg"
	msgOut   = "sum.result"
)

// Config describes one protocol run; identical across parties.
type Config struct {
	// P is the prime field modulus; must satisfy p >> Σ a_i or the total
	// wraps.
	P *big.Int
	// Parties lists participating node IDs; index in this slice fixes
	// the party's abscissa x_j = j+1.
	Parties []string
	// K is the reconstruction threshold (k of the (k,n) sharing).
	K int
	// Receivers are the nodes that learn the sum.
	Receivers []string
	// Weights optionally holds the public constants α_i, parallel to
	// Parties. Nil means the plain sum (all weights 1).
	Weights []*big.Int
	// Session disambiguates concurrent runs.
	Session string
	// Rand is the entropy source; nil means crypto/rand.
	Rand io.Reader
}

func (c *Config) validate() error {
	if c.P == nil || c.P.Sign() <= 0 {
		return fmt.Errorf("%w: missing field modulus", smc.ErrProtocol)
	}
	if err := smc.ValidateRing(c.Parties, 2); err != nil {
		return err
	}
	if c.K < 1 || c.K > len(c.Parties) {
		return fmt.Errorf("%w: threshold %d with %d parties", smc.ErrProtocol, c.K, len(c.Parties))
	}
	if len(c.Receivers) == 0 {
		return fmt.Errorf("%w: no receivers", smc.ErrProtocol)
	}
	for _, r := range c.Receivers {
		if !smc.Contains(c.Parties, r) {
			return fmt.Errorf("%w: receiver %q is not a party", smc.ErrProtocol, r)
		}
	}
	if c.Weights != nil && len(c.Weights) != len(c.Parties) {
		return fmt.Errorf("%w: %d weights for %d parties", smc.ErrProtocol, len(c.Weights), len(c.Parties))
	}
	if c.Session == "" {
		return fmt.Errorf("%w: empty session", smc.ErrProtocol)
	}
	return nil
}

type shareBody struct {
	X string `json:"x"`
	Y string `json:"y"`
}

type resultBody struct {
	Sum string `json:"sum"`
}

// Run executes one party's role with its private value. Receivers get
// the (possibly weighted) total; other parties get nil.
func Run(ctx context.Context, mb *transport.Mailbox, cfg Config, value *big.Int) (*big.Int, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if value == nil {
		return nil, fmt.Errorf("%w: nil local value", smc.ErrProtocol)
	}
	self := mb.ID()
	selfIdx, err := smc.IndexOf(cfg.Parties, self)
	if err != nil {
		return nil, err
	}
	n := len(cfg.Parties)
	xs := shamir.DefaultAbscissae(n)

	// Deal shares of the local value to every party (including self).
	shares, err := shamir.SplitAt(cfg.Rand, cfg.P, value, cfg.K, xs)
	if err != nil {
		return nil, fmt.Errorf("sum: splitting local value: %w", err)
	}
	// Apply this party's public weight to its own polynomial shares
	// (scaling every share by α_i scales the whole polynomial, so
	// F = Σ α_i f_i has constant term Σ α_i a_i, as in the paper) and
	// encode the per-party bodies, fanned over the worker pool.
	bodies := make([]shareBody, n)
	if err := workpool.Map(n, func(j int) error {
		if cfg.Weights != nil {
			var err error
			shares[j], err = shamir.ScaleShare(cfg.P, shares[j], cfg.Weights[selfIdx])
			if err != nil {
				return fmt.Errorf("sum: weighting share: %w", err)
			}
		}
		bodies[j] = shareBody{X: smc.EncodeBig(shares[j].X), Y: smc.EncodeBig(shares[j].Y)}
		return nil
	}); err != nil {
		return nil, err
	}
	for j, party := range cfg.Parties {
		if party == self {
			continue
		}
		if err := send(ctx, mb, party, msgShare, cfg.Session, bodies[j]); err != nil {
			return nil, err
		}
	}

	// Collect one share from every other party and aggregate with our
	// own, yielding (x_self, F(x_self)).
	received := []shamir.Share{shares[selfIdx]}
	for i := 0; i < n-1; i++ {
		msg, err := mb.Expect(ctx, msgShare, cfg.Session)
		if err != nil {
			return nil, fmt.Errorf("sum: awaiting shares: %w", err)
		}
		var body shareBody
		if err := transport.Unmarshal(msg.Payload, &body); err != nil {
			return nil, err
		}
		x, err := smc.DecodeBig(body.X)
		if err != nil {
			return nil, err
		}
		y, err := smc.DecodeBig(body.Y)
		if err != nil {
			return nil, err
		}
		if x.Cmp(shares[selfIdx].X) != 0 {
			return nil, fmt.Errorf("%w: %s dealt a share at x=%v, want x=%v", smc.ErrProtocol, msg.From, x, shares[selfIdx].X)
		}
		received = append(received, shamir.Share{X: x, Y: y})
	}
	agg, err := shamir.AddShares(cfg.P, received)
	if err != nil {
		return nil, fmt.Errorf("sum: aggregating shares: %w", err)
	}

	// The first k parties ship their aggregated shares to the first
	// receiver, which reconstructs and distributes.
	reconstructor := cfg.Receivers[0]
	if selfIdx < cfg.K && self != reconstructor {
		body := shareBody{X: smc.EncodeBig(agg.X), Y: smc.EncodeBig(agg.Y)}
		if err := send(ctx, mb, reconstructor, msgAgg, cfg.Session, body); err != nil {
			return nil, err
		}
	}

	if self == reconstructor {
		collected := make([]shamir.Share, 0, cfg.K)
		if selfIdx < cfg.K {
			collected = append(collected, agg)
		}
		for len(collected) < cfg.K {
			msg, err := mb.Expect(ctx, msgAgg, cfg.Session)
			if err != nil {
				return nil, fmt.Errorf("sum: awaiting aggregated shares: %w", err)
			}
			var body shareBody
			if err := transport.Unmarshal(msg.Payload, &body); err != nil {
				return nil, err
			}
			x, err := smc.DecodeBig(body.X)
			if err != nil {
				return nil, err
			}
			y, err := smc.DecodeBig(body.Y)
			if err != nil {
				return nil, err
			}
			collected = append(collected, shamir.Share{X: x, Y: y})
		}
		total, err := shamir.Combine(cfg.P, collected, cfg.K)
		if err != nil {
			return nil, fmt.Errorf("sum: reconstructing: %w", err)
		}
		for _, r := range cfg.Receivers {
			if r == self {
				continue
			}
			if err := send(ctx, mb, r, msgOut, cfg.Session, resultBody{Sum: smc.EncodeBig(total)}); err != nil {
				return nil, err
			}
		}
		return total, nil
	}

	if !smc.Contains(cfg.Receivers, self) {
		return nil, nil
	}
	msg, err := mb.Expect(ctx, msgOut, cfg.Session)
	if err != nil {
		return nil, fmt.Errorf("sum: awaiting result: %w", err)
	}
	var body resultBody
	if err := transport.Unmarshal(msg.Payload, &body); err != nil {
		return nil, err
	}
	return smc.DecodeBig(body.Sum)
}

func send(ctx context.Context, mb *transport.Mailbox, to, typ, session string, body any) error {
	msg, err := transport.NewMessage(to, typ, session, body)
	if err != nil {
		return err
	}
	if err := mb.Send(ctx, msg); err != nil {
		return fmt.Errorf("sum: sending %s to %s: %w", typ, to, err)
	}
	return nil
}
