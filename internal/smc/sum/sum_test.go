package sum

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"confaudit/internal/transport"
)

var testPrime = big.NewInt(2305843009213693951) // 2^61 - 1, Mersenne prime

func runParties(t *testing.T, cfg Config, values map[string]*big.Int) map[string]*big.Int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck

	results := make(map[string]*big.Int, len(cfg.Parties))
	errs := make(map[string]error, len(cfg.Parties))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, node := range cfg.Parties {
		ep, err := net.Endpoint(node)
		if err != nil {
			t.Fatal(err)
		}
		mb := transport.NewMailbox(ep)
		defer mb.Close() //nolint:errcheck
		wg.Add(1)
		go func(node string, mb *transport.Mailbox) {
			defer wg.Done()
			res, err := Run(ctx, mb, cfg, values[node])
			mu.Lock()
			defer mu.Unlock()
			results[node] = res
			errs[node] = err
		}(node, mb)
	}
	wg.Wait()
	for node, err := range errs {
		if err != nil {
			t.Fatalf("party %s: %v", node, err)
		}
	}
	return results
}

// TestSecureSumPaperExample sums the C1 column of the paper's Table 1
// (20+34+45+18+53 = 170) across five parties.
func TestSecureSumPaperExample(t *testing.T) {
	parties := []string{"P0", "P1", "P2", "P3", "P4"}
	values := map[string]*big.Int{
		"P0": big.NewInt(20), "P1": big.NewInt(34), "P2": big.NewInt(45),
		"P3": big.NewInt(18), "P4": big.NewInt(53),
	}
	cfg := Config{
		P:         testPrime,
		Parties:   parties,
		K:         3,
		Receivers: []string{"P0", "P2"},
		Session:   "table1-c1",
	}
	results := runParties(t, cfg, values)
	for _, r := range []string{"P0", "P2"} {
		if results[r] == nil || results[r].Int64() != 170 {
			t.Fatalf("%s sum = %v, want 170", r, results[r])
		}
	}
	for _, other := range []string{"P1", "P3", "P4"} {
		if results[other] != nil {
			t.Fatalf("non-receiver %s obtained the sum", other)
		}
	}
}

func TestSecureSumThresholdEqualsParties(t *testing.T) {
	parties := []string{"A", "B", "C"}
	values := map[string]*big.Int{
		"A": big.NewInt(1), "B": big.NewInt(2), "C": big.NewInt(3),
	}
	cfg := Config{
		P:         testPrime,
		Parties:   parties,
		K:         3,
		Receivers: []string{"C"},
		Session:   "k=n",
	}
	results := runParties(t, cfg, values)
	if results["C"].Int64() != 6 {
		t.Fatalf("sum = %v, want 6", results["C"])
	}
}

func TestSecureSumTwoParties(t *testing.T) {
	parties := []string{"A", "B"}
	values := map[string]*big.Int{"A": big.NewInt(1000), "B": big.NewInt(337)}
	cfg := Config{
		P:         testPrime,
		Parties:   parties,
		K:         2,
		Receivers: []string{"A", "B"},
		Session:   "pair",
	}
	results := runParties(t, cfg, values)
	for _, n := range parties {
		if results[n].Int64() != 1337 {
			t.Fatalf("%s sum = %v, want 1337", n, results[n])
		}
	}
}

// TestWeightedSum checks the paper's Σ α_i a_i variant.
func TestWeightedSum(t *testing.T) {
	parties := []string{"A", "B", "C"}
	values := map[string]*big.Int{
		"A": big.NewInt(7), "B": big.NewInt(11), "C": big.NewInt(13),
	}
	weights := []*big.Int{big.NewInt(2), big.NewInt(3), big.NewInt(5)}
	want := int64(2*7 + 3*11 + 5*13) // 112
	cfg := Config{
		P:         testPrime,
		Parties:   parties,
		K:         2,
		Receivers: []string{"B"},
		Weights:   weights,
		Session:   "weighted",
	}
	results := runParties(t, cfg, values)
	if results["B"].Int64() != want {
		t.Fatalf("weighted sum = %v, want %d", results["B"], want)
	}
}

func TestSumZeroValues(t *testing.T) {
	parties := []string{"A", "B", "C"}
	values := map[string]*big.Int{
		"A": big.NewInt(0), "B": big.NewInt(0), "C": big.NewInt(0),
	}
	cfg := Config{
		P:         testPrime,
		Parties:   parties,
		K:         2,
		Receivers: []string{"A"},
		Session:   "zeros",
	}
	results := runParties(t, cfg, values)
	if results["A"].Sign() != 0 {
		t.Fatalf("sum = %v, want 0", results["A"])
	}
}

func TestSumQuickRandomValues(t *testing.T) {
	parties := []string{"A", "B", "C", "D"}
	f := func(a, b, c, d uint32) bool {
		values := map[string]*big.Int{
			"A": big.NewInt(int64(a)), "B": big.NewInt(int64(b)),
			"C": big.NewInt(int64(c)), "D": big.NewInt(int64(d)),
		}
		want := new(big.Int).SetUint64(uint64(a) + uint64(b) + uint64(c) + uint64(d))
		cfg := Config{
			P:         testPrime,
			Parties:   parties,
			K:         2,
			Receivers: []string{"D"},
			Session:   fmt.Sprintf("q-%d-%d", a, b),
		}
		results := runParties(t, cfg, values)
		return results["D"].Cmp(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSumConfigValidation(t *testing.T) {
	ctx := context.Background()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ep, err := net.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	mb := transport.NewMailbox(ep)
	defer mb.Close() //nolint:errcheck

	cases := []Config{
		{Parties: []string{"A", "B"}, K: 2, Receivers: []string{"A"}, Session: "s"},                                                   // nil P
		{P: testPrime, Parties: []string{"A"}, K: 1, Receivers: []string{"A"}, Session: "s"},                                          // short
		{P: testPrime, Parties: []string{"A", "B"}, K: 0, Receivers: []string{"A"}, Session: "s"},                                     // k<1
		{P: testPrime, Parties: []string{"A", "B"}, K: 3, Receivers: []string{"A"}, Session: "s"},                                     // k>n
		{P: testPrime, Parties: []string{"A", "B"}, K: 2, Session: "s"},                                                               // no receivers
		{P: testPrime, Parties: []string{"A", "B"}, K: 2, Receivers: []string{"Z"}, Session: "s"},                                     // alien receiver
		{P: testPrime, Parties: []string{"A", "B"}, K: 2, Receivers: []string{"A"}},                                                   // no session
		{P: testPrime, Parties: []string{"A", "B"}, K: 2, Receivers: []string{"A"}, Weights: []*big.Int{big.NewInt(1)}, Session: "s"}, // weight count
	}
	for i, cfg := range cases {
		if _, err := Run(ctx, mb, cfg, big.NewInt(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	good := Config{P: testPrime, Parties: []string{"A", "B"}, K: 2, Receivers: []string{"A"}, Session: "s"}
	if _, err := Run(ctx, mb, good, nil); err == nil {
		t.Fatal("nil value accepted")
	}
}

func BenchmarkSum5Party(b *testing.B) {
	ctx := context.Background()
	parties := []string{"P0", "P1", "P2", "P3", "P4"}
	values := map[string]*big.Int{}
	for i, p := range parties {
		values[p] = big.NewInt(int64(i * 100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := transport.NewMemNetwork()
		cfg := Config{
			P:         testPrime,
			Parties:   parties,
			K:         3,
			Receivers: []string{"P0"},
			Session:   fmt.Sprintf("b%d", i),
		}
		var wg sync.WaitGroup
		for _, node := range parties {
			ep, err := net.Endpoint(node)
			if err != nil {
				b.Fatal(err)
			}
			mb := transport.NewMailbox(ep)
			wg.Add(1)
			go func(node string, mb *transport.Mailbox) {
				defer wg.Done()
				defer mb.Close() //nolint:errcheck
				if _, err := Run(ctx, mb, cfg, values[node]); err != nil {
					b.Error(err)
				}
			}(node, mb)
		}
		wg.Wait()
		net.Close() //nolint:errcheck
	}
}
