package smc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Shared binary payload encoding for the ring-relay body shape.
//
// Every relay-style body in the SMC protocols (intersect/union relay
// chunks, final-set publications, union collect/decrypt batches) is the
// same seven fields: an origin, small integer framing (hops, chunk
// seq/total, block width), and a block batch carried either as one
// packed run or as an element-wise list. RelayWire is that shape's
// binary encoding, so each protocol's body type implements
// transport.BinaryBody by delegating here rather than re-deriving the
// codec.
//
// Layout (all integers uvarint):
//
//	len(Origin) ‖ Origin ‖ Hops ‖ Seq ‖ Total ‖ BlockLen ‖
//	len(Packed) ‖ Packed ‖ count(Blocks) ‖ { len(block) ‖ block }*
//
// The packed run dominates in practice — PackBlocks produces it for
// uniform-width ciphertext batches — and rides the wire raw: no base64,
// no per-element framing, and on the TCP fast path it is appended
// straight into the envelope codec's pooled frame buffer (BinarySize is
// exact, so the frame length prefix can be written first). Only sizes
// and counts are visible in the framing, the secondary information
// Definition 1 permits.

// RelayWire is the union of fields the relay-shaped bodies carry.
// Unused fields encode as zero and cost one byte each.
type RelayWire struct {
	Origin   string
	Hops     int
	Seq      int
	Total    int
	BlockLen int
	Packed   []byte
	Blocks   [][]byte
}

// uvarintLen is the encoded size of v.
func uvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// BinarySize returns the exact encoded size in bytes.
func (w *RelayWire) BinarySize() int {
	n := uvarintLen(uint64(len(w.Origin))) + len(w.Origin)
	n += uvarintLen(uint64(w.Hops))
	n += uvarintLen(uint64(w.Seq))
	n += uvarintLen(uint64(w.Total))
	n += uvarintLen(uint64(w.BlockLen))
	n += uvarintLen(uint64(len(w.Packed))) + len(w.Packed)
	n += uvarintLen(uint64(len(w.Blocks)))
	for _, b := range w.Blocks {
		n += uvarintLen(uint64(len(b))) + len(b)
	}
	return n
}

// AppendBinary appends the encoding to dst and returns the extended
// slice. It appends exactly BinarySize bytes and retains nothing.
func (w *RelayWire) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(w.Origin)))
	dst = append(dst, w.Origin...)
	dst = binary.AppendUvarint(dst, uint64(w.Hops))
	dst = binary.AppendUvarint(dst, uint64(w.Seq))
	dst = binary.AppendUvarint(dst, uint64(w.Total))
	dst = binary.AppendUvarint(dst, uint64(w.BlockLen))
	dst = binary.AppendUvarint(dst, uint64(len(w.Packed)))
	dst = append(dst, w.Packed...)
	dst = binary.AppendUvarint(dst, uint64(len(w.Blocks)))
	for _, b := range w.Blocks {
		dst = binary.AppendUvarint(dst, uint64(len(b)))
		dst = append(dst, b...)
	}
	return dst
}

// DecodeBinary decodes an encoding produced by AppendBinary into w,
// copying everything it keeps — the source buffer may be recycled by
// the transport after the call.
func (w *RelayWire) DecodeBinary(src []byte) error {
	rest := src
	num := func() (uint64, error) {
		v, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return 0, fmt.Errorf("%w: truncated relay wire body", ErrBadWireValue)
		}
		rest = rest[sz:]
		return v, nil
	}
	run := func() ([]byte, error) {
		n, err := num()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(rest)) {
			return nil, fmt.Errorf("%w: relay wire run of %d bytes exceeds remaining %d", ErrBadWireValue, n, len(rest))
		}
		b := rest[:n]
		rest = rest[n:]
		return b, nil
	}
	small := func() (int, error) {
		v, err := num()
		if err != nil {
			return 0, err
		}
		// Counts and widths are bounded by the frame they arrived in;
		// anything wider than 32 bits is a hostile encoding.
		if v > 1<<31 {
			return 0, fmt.Errorf("%w: relay wire field %d out of range", ErrBadWireValue, v)
		}
		return int(v), nil
	}

	origin, err := run()
	if err != nil {
		return err
	}
	w.Origin = string(origin)
	if w.Hops, err = small(); err != nil {
		return err
	}
	if w.Seq, err = small(); err != nil {
		return err
	}
	if w.Total, err = small(); err != nil {
		return err
	}
	if w.BlockLen, err = small(); err != nil {
		return err
	}
	packed, err := run()
	if err != nil {
		return err
	}
	w.Packed = nil
	if len(packed) > 0 {
		w.Packed = append([]byte(nil), packed...)
	}
	count, err := small()
	if err != nil {
		return err
	}
	w.Blocks = nil
	if count > 0 {
		if count > len(rest) {
			// Each block costs at least its one-byte length prefix.
			return fmt.Errorf("%w: relay wire claims %d blocks in %d bytes", ErrBadWireValue, count, len(rest))
		}
		// Copy the remaining run once and subslice blocks out of the
		// copy, so the legacy element-wise path costs one allocation
		// instead of one per block.
		backing := append([]byte(nil), rest...)
		w.Blocks = make([][]byte, 0, count)
		pos := 0
		for i := 0; i < count; i++ {
			n, sz := binary.Uvarint(backing[pos:])
			if sz <= 0 {
				return fmt.Errorf("%w: truncated relay wire body", ErrBadWireValue)
			}
			pos += sz
			if n > uint64(len(backing)-pos) {
				return fmt.Errorf("%w: relay wire run of %d bytes exceeds remaining %d", ErrBadWireValue, n, len(backing)-pos)
			}
			w.Blocks = append(w.Blocks, backing[pos:pos+int(n):pos+int(n)])
			pos += int(n)
		}
		rest = rest[pos:]
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after relay wire body", ErrBadWireValue, len(rest))
	}
	return nil
}
