package compare

import (
	"context"
	"math/big"
	"sync"
	"testing"
	"time"

	"confaudit/internal/transport"
)

func runBatch(t *testing.T, session string, keys []string, va, vb []*big.Int) map[string]int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := mailboxes(t, net, "A", "B", "TTP")
	cfg := BatchConfig{
		Holders: [2]string{"A", "B"},
		TTP:     "TTP",
		MaxAbs:  big.NewInt(1 << 40),
		Session: session,
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = map[string]map[string]int{}
		errs    = map[string]error{}
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		if err := ServeBatchCompare(ctx, mbs["TTP"], cfg); err != nil {
			mu.Lock()
			errs["TTP"] = err
			mu.Unlock()
		}
	}()
	for id, vals := range map[string][]*big.Int{"A": va, "B": vb} {
		go func(id string, vals []*big.Int) {
			defer wg.Done()
			res, err := BatchCompare(ctx, mbs[id], cfg, keys, vals)
			mu.Lock()
			defer mu.Unlock()
			results[id] = res
			errs[id] = err
		}(id, vals)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	for k := range results["A"] {
		if results["A"][k] != results["B"][k] {
			t.Fatalf("holders disagree on key %s", k)
		}
	}
	return results["A"]
}

func TestBatchCompareSigns(t *testing.T) {
	keys := []string{"g1", "g2", "g3", "g4"}
	va := []*big.Int{big.NewInt(10), big.NewInt(20), big.NewInt(30), big.NewInt(-5)}
	vb := []*big.Int{big.NewInt(20), big.NewInt(20), big.NewInt(7), big.NewInt(-4)}
	got := runBatch(t, "batch-1", keys, va, vb)
	want := map[string]int{"g1": -1, "g2": 0, "g3": 1, "g4": -1}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("sign(%s) = %d, want %d", k, got[k], w)
		}
	}
}

func TestBatchCompareEmpty(t *testing.T) {
	got := runBatch(t, "batch-empty", nil, nil, nil)
	if len(got) != 0 {
		t.Fatalf("expected empty result, got %v", got)
	}
}

func TestBatchCompareLarge(t *testing.T) {
	const n = 100
	keys := make([]string, n)
	va := make([]*big.Int, n)
	vb := make([]*big.Int, n)
	want := make(map[string]int, n)
	for i := 0; i < n; i++ {
		keys[i] = "k" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		va[i] = big.NewInt(int64(i * 3 % 50))
		vb[i] = big.NewInt(int64(i * 7 % 50))
		want[keys[i]] = va[i].Cmp(vb[i])
	}
	got := runBatch(t, "batch-large", keys, va, vb)
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("sign(%s) = %d, want %d", k, got[k], w)
		}
	}
}

func TestBatchCompareValidation(t *testing.T) {
	ctx := context.Background()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := mailboxes(t, net, "A")
	good := BatchConfig{Holders: [2]string{"A", "B"}, TTP: "T", MaxAbs: big.NewInt(100), Session: "s"}

	if _, err := BatchCompare(ctx, mbs["A"], good, []string{"k"}, nil); err == nil {
		t.Fatal("mismatched keys/values accepted")
	}
	if _, err := BatchCompare(ctx, mbs["A"], good, []string{"k"}, []*big.Int{big.NewInt(101)}); err == nil {
		t.Fatal("out-of-bound value accepted")
	}
	if _, err := BatchCompare(ctx, mbs["A"], good, []string{"k"}, []*big.Int{nil}); err == nil {
		t.Fatal("nil value accepted")
	}
	bad := good
	bad.TTP = "A"
	if _, err := BatchCompare(ctx, mbs["A"], bad, nil, nil); err == nil {
		t.Fatal("TTP==holder accepted")
	}
	bad = good
	bad.MaxAbs = nil
	if err := ServeBatchCompare(ctx, mbs["A"], bad); err == nil {
		t.Fatal("nil bound accepted by TTP")
	}
}
