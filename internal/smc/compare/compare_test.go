package compare

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"confaudit/internal/mathx"
	"confaudit/internal/transport"
)

var testPrime = big.NewInt(2305843009213693951) // 2^61 - 1

func mailboxes(t testing.TB, net *transport.MemNetwork, ids ...string) map[string]*transport.Mailbox {
	t.Helper()
	mbs := make(map[string]*transport.Mailbox, len(ids))
	for _, id := range ids {
		ep, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		mb := transport.NewMailbox(ep)
		t.Cleanup(func() { mb.Close() }) //nolint:errcheck
		mbs[id] = mb
	}
	return mbs
}

func runEquality(t *testing.T, session string, va, vb *big.Int) bool {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := mailboxes(t, net, "A", "B", "TTP")

	cfg := EqualityConfig{
		P:       testPrime,
		Holders: [2]string{"A", "B"},
		TTP:     "TTP",
		Session: session,
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = map[string]bool{}
		errs    = map[string]error{}
	)
	wg.Add(3)
	go func() {
		defer wg.Done()
		if err := ServeEqual(ctx, mbs["TTP"], cfg); err != nil {
			mu.Lock()
			errs["TTP"] = err
			mu.Unlock()
		}
	}()
	for id, v := range map[string]*big.Int{"A": va, "B": vb} {
		go func(id string, v *big.Int) {
			defer wg.Done()
			eq, err := Equal(ctx, mbs[id], cfg, v)
			mu.Lock()
			defer mu.Unlock()
			results[id] = eq
			errs[id] = err
		}(id, v)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	if results["A"] != results["B"] {
		t.Fatal("holders received different verdicts")
	}
	return results["A"]
}

func TestEqualityPositive(t *testing.T) {
	if !runEquality(t, "eq-pos", big.NewInt(23456), big.NewInt(23456)) {
		t.Fatal("equal values reported unequal")
	}
}

func TestEqualityNegative(t *testing.T) {
	if runEquality(t, "eq-neg", big.NewInt(23456), big.NewInt(23457)) {
		t.Fatal("unequal values reported equal")
	}
}

func TestEqualityZeroValues(t *testing.T) {
	if !runEquality(t, "eq-zero", big.NewInt(0), big.NewInt(0)) {
		t.Fatal("zero values reported unequal")
	}
}

func TestEqualityQuick(t *testing.T) {
	i := 0
	f := func(a, b uint32) bool {
		i++
		got := runEquality(t, fmt.Sprintf("eq-q-%d", i), big.NewInt(int64(a)), big.NewInt(int64(b)))
		return got == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualityConfigValidation(t *testing.T) {
	ctx := context.Background()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := mailboxes(t, net, "A")
	cases := []EqualityConfig{
		{Holders: [2]string{"A", "B"}, TTP: "T", Session: "s"},               // nil P
		{P: testPrime, Holders: [2]string{"A", "A"}, TTP: "T", Session: "s"}, // same holders
		{P: testPrime, Holders: [2]string{"A", ""}, TTP: "T", Session: "s"},  // empty holder
		{P: testPrime, Holders: [2]string{"A", "B"}, TTP: "A", Session: "s"}, // TTP is holder
		{P: testPrime, Holders: [2]string{"A", "B"}, TTP: "", Session: "s"},  // no TTP
		{P: testPrime, Holders: [2]string{"A", "B"}, TTP: "T"},               // no session
		{P: testPrime, Holders: [2]string{"X", "Y"}, TTP: "T", Session: "s"}, // self not holder
	}
	for i, cfg := range cases {
		if _, err := Equal(ctx, mbs["A"], cfg, big.NewInt(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	good := EqualityConfig{P: testPrime, Holders: [2]string{"A", "B"}, TTP: "T", Session: "s"}
	if _, err := Equal(ctx, mbs["A"], good, nil); err == nil {
		t.Fatal("nil value accepted")
	}
}

func runRank(t *testing.T, session string, values map[string]*big.Int, maxValue *big.Int) map[string]*RankResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	holders := make([]string, 0, len(values))
	for h := range values {
		holders = append(holders, h)
	}
	// Deterministic holder order for the config.
	for i := 0; i < len(holders); i++ {
		for j := i + 1; j < len(holders); j++ {
			if holders[j] < holders[i] {
				holders[i], holders[j] = holders[j], holders[i]
			}
		}
	}
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := mailboxes(t, net, append(append([]string{}, holders...), "TTP")...)
	cfg := RankConfig{
		Holders:  holders,
		TTP:      "TTP",
		MaxValue: maxValue,
		Session:  session,
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results = map[string]*RankResult{}
		errs    = map[string]error{}
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ServeRank(ctx, mbs["TTP"], cfg); err != nil {
			mu.Lock()
			errs["TTP"] = err
			mu.Unlock()
		}
	}()
	for h, v := range values {
		wg.Add(1)
		go func(h string, v *big.Int) {
			defer wg.Done()
			res, err := Rank(ctx, mbs[h], cfg, v)
			mu.Lock()
			defer mu.Unlock()
			results[h] = res
			errs[h] = err
		}(h, v)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return results
}

func TestRankBasic(t *testing.T) {
	values := map[string]*big.Int{
		"A": big.NewInt(300),
		"B": big.NewInt(100),
		"C": big.NewInt(200),
	}
	results := runRank(t, "rank-basic", values, big.NewInt(1000))
	for h, res := range results {
		if res.MaxHolder != "A" {
			t.Fatalf("%s sees max holder %q, want A", h, res.MaxHolder)
		}
		if res.MinHolder != "B" {
			t.Fatalf("%s sees min holder %q, want B", h, res.MinHolder)
		}
		if res.Rank["A"] != 1 || res.Rank["C"] != 2 || res.Rank["B"] != 3 {
			t.Fatalf("%s ranks = %v", h, res.Rank)
		}
	}
}

func TestRankTies(t *testing.T) {
	values := map[string]*big.Int{
		"A": big.NewInt(50),
		"B": big.NewInt(50),
		"C": big.NewInt(10),
	}
	results := runRank(t, "rank-tie", values, big.NewInt(100))
	res := results["A"]
	if res.Rank["A"] != 1 || res.Rank["B"] != 1 {
		t.Fatalf("tied holders should share rank 1: %v", res.Rank)
	}
	if res.Rank["C"] != 3 {
		t.Fatalf("C rank = %d, want 3", res.Rank["C"])
	}
	if res.MaxHolder != "A" { // smallest ID among tied maxima
		t.Fatalf("MaxHolder = %q, want A", res.MaxHolder)
	}
	if res.MinHolder != "C" {
		t.Fatalf("MinHolder = %q, want C", res.MinHolder)
	}
}

func TestRankTwoHolders(t *testing.T) {
	values := map[string]*big.Int{
		"A": big.NewInt(0),
		"B": big.NewInt(1),
	}
	results := runRank(t, "rank-two", values, big.NewInt(1))
	if results["A"].MaxHolder != "B" || results["A"].MinHolder != "A" {
		t.Fatalf("verdict = %+v", results["A"])
	}
}

// TestRankOrderPreservedQuick property-tests that the monotone transform
// preserves the true order for random values.
func TestRankOrderPreservedQuick(t *testing.T) {
	i := 0
	f := func(a, b, c uint16) bool {
		i++
		values := map[string]*big.Int{
			"A": big.NewInt(int64(a)),
			"B": big.NewInt(int64(b)),
			"C": big.NewInt(int64(c)),
		}
		results := runRank(t, fmt.Sprintf("rank-q-%d", i), values, big.NewInt(1<<17))
		res := results["A"]
		// Verify ranks agree with plaintext descending order.
		vals := []struct {
			h string
			v uint16
		}{{"A", a}, {"B", b}, {"C", c}}
		for x := 0; x < len(vals); x++ {
			for y := 0; y < len(vals); y++ {
				if vals[x].v > vals[y].v && res.Rank[vals[x].h] >= res.Rank[vals[y].h] {
					return false
				}
				if vals[x].v == vals[y].v && res.Rank[vals[x].h] != res.Rank[vals[y].h] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestRankConfigValidation(t *testing.T) {
	ctx := context.Background()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := mailboxes(t, net, "A")
	cases := []RankConfig{
		{Holders: []string{"A"}, TTP: "T", MaxValue: big.NewInt(10), Session: "s"},      // one holder
		{Holders: []string{"A", "B"}, TTP: "A", MaxValue: big.NewInt(10), Session: "s"}, // TTP is holder
		{Holders: []string{"A", "B"}, TTP: "", MaxValue: big.NewInt(10), Session: "s"},  // no TTP
		{Holders: []string{"A", "B"}, TTP: "T", Session: "s"},                           // no bound
		{Holders: []string{"A", "B"}, TTP: "T", MaxValue: big.NewInt(10)},               // no session
		{Holders: []string{"X", "Y"}, TTP: "T", MaxValue: big.NewInt(10), Session: "s"}, // self not holder
	}
	for i, cfg := range cases {
		if _, err := Rank(ctx, mbs["A"], cfg, big.NewInt(1)); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	good := RankConfig{Holders: []string{"A", "B"}, TTP: "T", MaxValue: big.NewInt(10), Session: "s"}
	if _, err := Rank(ctx, mbs["A"], good, big.NewInt(11)); err == nil {
		t.Fatal("out-of-bound value accepted")
	}
	if _, err := Rank(ctx, mbs["A"], good, nil); err == nil {
		t.Fatal("nil value accepted")
	}
}

// TestEqualBySetIntersection covers the §3.2 singleton-∩s equality
// route (no TTP involved).
func TestEqualBySetIntersection(t *testing.T) {
	run := func(session string, va, vb []byte) bool {
		t.Helper()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		net := transport.NewMemNetwork()
		defer net.Close() //nolint:errcheck
		mbs := mailboxes(t, net, "A", "B")
		var (
			wg         sync.WaitGroup
			eqA, eqB   bool
			errA, errB error
		)
		wg.Add(2)
		go func() {
			defer wg.Done()
			eqA, errA = EqualBySetIntersection(ctx, mbs["A"], mathx.Oakley768, [2]string{"A", "B"}, session, va)
		}()
		go func() {
			defer wg.Done()
			eqB, errB = EqualBySetIntersection(ctx, mbs["B"], mathx.Oakley768, [2]string{"A", "B"}, session, vb)
		}()
		wg.Wait()
		if errA != nil || errB != nil {
			t.Fatalf("errors: %v %v", errA, errB)
		}
		if eqA != eqB {
			t.Fatal("holders disagree")
		}
		return eqA
	}
	if !run("ebsi-1", []byte("salary-45002"), []byte("salary-45002")) {
		t.Fatal("equal values reported unequal")
	}
	if run("ebsi-2", []byte("salary-45002"), []byte("salary-45003")) {
		t.Fatal("unequal values reported equal")
	}
}

func BenchmarkEquality(b *testing.B) {
	ctx := context.Background()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ids := []string{"A", "B", "TTP"}
	mbs := make(map[string]*transport.Mailbox, 3)
	for _, id := range ids {
		ep, err := net.Endpoint(id)
		if err != nil {
			b.Fatal(err)
		}
		mbs[id] = transport.NewMailbox(ep)
		defer mbs[id].Close() //nolint:errcheck
	}
	va, vb := big.NewInt(12345), big.NewInt(12345)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := EqualityConfig{
			P:       testPrime,
			Holders: [2]string{"A", "B"},
			TTP:     "TTP",
			Session: fmt.Sprintf("b%d", i),
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			if err := ServeEqual(ctx, mbs["TTP"], cfg); err != nil {
				b.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := Equal(ctx, mbs["A"], cfg, va); err != nil {
				b.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := Equal(ctx, mbs["B"], cfg, vb); err != nil {
				b.Error(err)
			}
		}()
		wg.Wait()
	}
}
