// Package compare implements the blind-TTP comparison primitives of
// paper §3.2 and §3.3:
//
//   - Secure equality =s via randomized mapping: the two holders agree
//     on secret random a, b (a ≠ 0 mod p) and submit W = (aY + b) mod p
//     to a TTP, which compares the transformed values "without knowing
//     the real information" and returns only the boolean.
//
//   - Secure Max/Min/Rank: all n holders agree on a secret strictly
//     monotone affine transform W = a·x + b over the integers (a > 0),
//     submit transformed values to a blind TTP, and the TTP returns who
//     holds the maximum/minimum and each party's rank — never the
//     values.
//
// In both protocols the joint secrets are derived by additive
// contribution from every holder (each sends a random pair to the
// others), so the TTP cannot know the transform, and no single holder
// chooses it alone — the paper's "provision must be made to prevent the
// TTP from ... colluding with the nodes submitting the inquiry".
//
// Leakage (permitted by Definition 1's relaxed model): the TTP learns
// equality patterns, the order of the transformed values, and scaled
// gaps between them; it never sees a plaintext value.
package compare

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"sort"

	"confaudit/internal/mathx"
	"confaudit/internal/smc"
	"confaudit/internal/smc/intersect"
	"confaudit/internal/transport"
)

// Message types on the wire.
const (
	msgSeed      = "compare.seed"
	msgSubmitEq  = "compare.eq.submit"
	msgVerdictEq = "compare.eq.verdict"
	msgSubmitRk  = "compare.rank.submit"
	msgVerdictRk = "compare.rank.verdict"
)

// EqualityConfig describes one equality run between two holders and a
// TTP that is neither of them.
type EqualityConfig struct {
	// P is the prime modulus of the transform space; must exceed every
	// possible value.
	P *big.Int
	// Holders are the two nodes with private values.
	Holders [2]string
	// TTP is the blind comparison node.
	TTP string
	// Session disambiguates concurrent runs.
	Session string
	// Rand is the entropy source; nil means crypto/rand.
	Rand io.Reader
}

func (c *EqualityConfig) validate() error {
	if c.P == nil || c.P.Cmp(big.NewInt(3)) < 0 {
		return fmt.Errorf("%w: modulus too small", smc.ErrProtocol)
	}
	if c.Holders[0] == "" || c.Holders[1] == "" || c.Holders[0] == c.Holders[1] {
		return fmt.Errorf("%w: need two distinct holders", smc.ErrProtocol)
	}
	if c.TTP == "" || c.TTP == c.Holders[0] || c.TTP == c.Holders[1] {
		return fmt.Errorf("%w: TTP must be a third party", smc.ErrProtocol)
	}
	if c.Session == "" {
		return fmt.Errorf("%w: empty session", smc.ErrProtocol)
	}
	return nil
}

type seedBody struct {
	A string `json:"a"`
	B string `json:"b"`
}

type submitBody struct {
	W string `json:"w"`
}

type eqVerdictBody struct {
	Equal bool `json:"equal"`
}

// Equal executes a holder's role: derive the joint (a, b), submit the
// transformed value, await the verdict.
func Equal(ctx context.Context, mb *transport.Mailbox, cfg EqualityConfig, value *big.Int) (bool, error) {
	if err := cfg.validate(); err != nil {
		return false, err
	}
	if value == nil {
		return false, fmt.Errorf("%w: nil value", smc.ErrProtocol)
	}
	self := mb.ID()
	var peer string
	switch self {
	case cfg.Holders[0]:
		peer = cfg.Holders[1]
	case cfg.Holders[1]:
		peer = cfg.Holders[0]
	default:
		return false, fmt.Errorf("%w: %q is not a holder", smc.ErrProtocol, self)
	}

	a, b, err := jointSecret(ctx, mb, cfg.Rand, cfg.P, []string{peer}, cfg.Session)
	if err != nil {
		return false, err
	}
	// W = (a*value + b) mod p.
	w := new(big.Int).Mul(a, value)
	w.Add(w, b)
	w.Mod(w, cfg.P)
	if err := send(ctx, mb, cfg.TTP, msgSubmitEq, cfg.Session, submitBody{W: smc.EncodeBig(w)}); err != nil {
		return false, err
	}
	msg, err := mb.Expect(ctx, msgVerdictEq, cfg.Session)
	if err != nil {
		return false, fmt.Errorf("compare: awaiting verdict: %w", err)
	}
	var verdict eqVerdictBody
	if err := transport.Unmarshal(msg.Payload, &verdict); err != nil {
		return false, err
	}
	return verdict.Equal, nil
}

// ServeEqual executes the TTP's role: receive both transformed values,
// compare, return only the boolean to both holders.
func ServeEqual(ctx context.Context, mb *transport.Mailbox, cfg EqualityConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	ws := make(map[string]*big.Int, 2)
	for len(ws) < 2 {
		msg, err := mb.Expect(ctx, msgSubmitEq, cfg.Session)
		if err != nil {
			return fmt.Errorf("compare: awaiting submissions: %w", err)
		}
		if msg.From != cfg.Holders[0] && msg.From != cfg.Holders[1] {
			return fmt.Errorf("%w: submission from non-holder %q", smc.ErrProtocol, msg.From)
		}
		var body submitBody
		if err := transport.Unmarshal(msg.Payload, &body); err != nil {
			return err
		}
		w, err := smc.DecodeBig(body.W)
		if err != nil {
			return err
		}
		ws[msg.From] = w
	}
	verdict := eqVerdictBody{Equal: ws[cfg.Holders[0]].Cmp(ws[cfg.Holders[1]]) == 0}
	for _, h := range cfg.Holders {
		if err := send(ctx, mb, h, msgVerdictEq, cfg.Session, verdict); err != nil {
			return err
		}
	}
	return nil
}

// EqualBySetIntersection is the paper's alternative §3.2 equality
// route: "when the set size of S_i = 1, the secure set intersection
// could be used for secure equality comparison." Both holders run a
// two-party ∩s over their singleton sets; equality holds iff the
// intersection is non-empty. Unlike the TTP route, no third party is
// needed, at the cost of commutative exponentiations.
func EqualBySetIntersection(ctx context.Context, mb *transport.Mailbox, group *mathx.Group, holders [2]string, session string, value []byte) (bool, error) {
	cfg := intersect.Config{
		Group:     group,
		Ring:      holders[:],
		Receivers: holders[:],
		Session:   session,
	}
	res, err := intersect.Run(ctx, mb, cfg, [][]byte{value})
	if err != nil {
		return false, err
	}
	return len(res.Plaintext) == 1, nil
}

// RankConfig describes one Max/Min/Rank run among n holders and a TTP.
type RankConfig struct {
	// Holders are the nodes with private values, in canonical order.
	Holders []string
	// TTP is the blind sorting node.
	TTP string
	// MaxValue bounds every holder's value (inclusive); the monotone
	// transform is sampled against this bound.
	MaxValue *big.Int
	// Session disambiguates concurrent runs.
	Session string
	// Rand is the entropy source; nil means crypto/rand.
	Rand io.Reader
}

func (c *RankConfig) validate() error {
	if err := smc.ValidateRing(c.Holders, 2); err != nil {
		return err
	}
	if c.TTP == "" || smc.Contains(c.Holders, c.TTP) {
		return fmt.Errorf("%w: TTP must be a third party", smc.ErrProtocol)
	}
	if c.MaxValue == nil || c.MaxValue.Sign() <= 0 {
		return fmt.Errorf("%w: missing value bound", smc.ErrProtocol)
	}
	if c.Session == "" {
		return fmt.Errorf("%w: empty session", smc.ErrProtocol)
	}
	return nil
}

// RankResult is the verdict every holder receives.
type RankResult struct {
	// MaxHolder and MinHolder name the nodes with the extreme values.
	MaxHolder string `json:"max_holder"`
	MinHolder string `json:"min_holder"`
	// Rank maps holder ID to its 1-based rank in descending order
	// (rank 1 = maximum). Ties share the lower rank number.
	Rank map[string]int `json:"rank"`
}

// Rank executes a holder's role in Max/Min/Rank.
func Rank(ctx context.Context, mb *transport.Mailbox, cfg RankConfig, value *big.Int) (*RankResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if value == nil || value.Sign() < 0 || value.Cmp(cfg.MaxValue) > 0 {
		return nil, fmt.Errorf("%w: value out of [0, MaxValue]", smc.ErrProtocol)
	}
	self := mb.ID()
	if !smc.Contains(cfg.Holders, self) {
		return nil, fmt.Errorf("%w: %q is not a holder", smc.ErrProtocol, self)
	}
	peers := make([]string, 0, len(cfg.Holders)-1)
	for _, h := range cfg.Holders {
		if h != self {
			peers = append(peers, h)
		}
	}
	// Joint a, b sampled against a bound far above MaxValue; the
	// transform W = a·x + b over the integers is strictly increasing
	// because a ≥ 1.
	bound := new(big.Int).Lsh(cfg.MaxValue, 64)
	a, b, err := jointSecret(ctx, mb, cfg.Rand, bound, peers, cfg.Session)
	if err != nil {
		return nil, err
	}
	w := new(big.Int).Mul(a, value)
	w.Add(w, b)
	if err := send(ctx, mb, cfg.TTP, msgSubmitRk, cfg.Session, submitBody{W: smc.EncodeBig(w)}); err != nil {
		return nil, err
	}
	msg, err := mb.Expect(ctx, msgVerdictRk, cfg.Session)
	if err != nil {
		return nil, fmt.Errorf("compare: awaiting rank verdict: %w", err)
	}
	var res RankResult
	if err := transport.Unmarshal(msg.Payload, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// ServeRank executes the TTP's role: collect transformed values from
// every holder, sort, return extreme holders and ranks (values never
// leave the TTP, and the TTP never saw plaintexts).
func ServeRank(ctx context.Context, mb *transport.Mailbox, cfg RankConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	ws := make(map[string]*big.Int, len(cfg.Holders))
	for len(ws) < len(cfg.Holders) {
		msg, err := mb.Expect(ctx, msgSubmitRk, cfg.Session)
		if err != nil {
			return fmt.Errorf("compare: awaiting rank submissions: %w", err)
		}
		if !smc.Contains(cfg.Holders, msg.From) {
			return fmt.Errorf("%w: submission from non-holder %q", smc.ErrProtocol, msg.From)
		}
		var body submitBody
		if err := transport.Unmarshal(msg.Payload, &body); err != nil {
			return err
		}
		w, err := smc.DecodeBig(body.W)
		if err != nil {
			return err
		}
		ws[msg.From] = w
	}
	type hw struct {
		holder string
		w      *big.Int
	}
	order := make([]hw, 0, len(ws))
	for h, w := range ws {
		order = append(order, hw{holder: h, w: w})
	}
	sort.Slice(order, func(i, j int) bool {
		c := order[i].w.Cmp(order[j].w)
		if c != 0 {
			return c > 0 // descending: rank 1 is the maximum
		}
		return order[i].holder < order[j].holder
	})
	res := RankResult{Rank: make(map[string]int, len(order))}
	res.MaxHolder = order[0].holder
	res.MinHolder = order[len(order)-1].holder
	rank := 0
	for i, e := range order {
		if i == 0 || e.w.Cmp(order[i-1].w) != 0 {
			rank = i + 1
		}
		res.Rank[e.holder] = rank
	}
	// Ties at the top/bottom: the canonical extreme is the tied holder
	// with the smallest ID, which the sort already guarantees.
	for _, h := range cfg.Holders {
		if err := send(ctx, mb, h, msgVerdictRk, cfg.Session, res); err != nil {
			return err
		}
	}
	return nil
}

// jointSecret derives shared (a, b) among self and peers by additive
// contributions: every party broadcasts a random pair; the sums are the
// transform. a is forced into [1, bound) so the transform is injective
// (and monotone in the integer variant).
func jointSecret(ctx context.Context, mb *transport.Mailbox, rng io.Reader, bound *big.Int, peers []string, session string) (a, b *big.Int, err error) {
	myA, err := mathx.RandScalar(rng, bound)
	if err != nil {
		return nil, nil, fmt.Errorf("compare: sampling a: %w", err)
	}
	myB, err := mathx.RandScalar(rng, bound)
	if err != nil {
		return nil, nil, fmt.Errorf("compare: sampling b: %w", err)
	}
	body := seedBody{A: smc.EncodeBig(myA), B: smc.EncodeBig(myB)}
	for _, p := range peers {
		if err := send(ctx, mb, p, msgSeed, session, body); err != nil {
			return nil, nil, err
		}
	}
	a = new(big.Int).Set(myA)
	b = new(big.Int).Set(myB)
	for range peers {
		msg, err := mb.Expect(ctx, msgSeed, session)
		if err != nil {
			return nil, nil, fmt.Errorf("compare: awaiting seed: %w", err)
		}
		var sb seedBody
		if err := transport.Unmarshal(msg.Payload, &sb); err != nil {
			return nil, nil, err
		}
		pa, err := smc.DecodeBig(sb.A)
		if err != nil {
			return nil, nil, err
		}
		pb, err := smc.DecodeBig(sb.B)
		if err != nil {
			return nil, nil, err
		}
		a.Add(a, pa)
		b.Add(b, pb)
	}
	// a stays ≥ 1 because every contribution is ≥ 1 (RandScalar range).
	return a, b, nil
}

func send(ctx context.Context, mb *transport.Mailbox, to, typ, session string, body any) error {
	msg, err := transport.NewMessage(to, typ, session, body)
	if err != nil {
		return err
	}
	if err := mb.Send(ctx, msg); err != nil {
		return fmt.Errorf("compare: sending %s to %s: %w", typ, to, err)
	}
	return nil
}
