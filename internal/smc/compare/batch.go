package compare

import (
	"context"
	"fmt"
	"io"
	"math/big"

	"confaudit/internal/smc"
	"confaudit/internal/transport"
	"confaudit/internal/workpool"
)

// Batch comparison: two holders each hold a value per shared key (in
// the DLA system, one attribute value per glsn), and need the ordering
// of the two values for every key without revealing the values. Both
// holders apply the same jointly-derived strictly monotone transform
// W = a·x + b and submit the transformed vectors to a blind TTP, which
// returns only the per-key comparison signs. This is the §3.3 machinery
// applied per audit record, and is what evaluates cross-node auditing
// predicates like salary_P1 > price_P2.

// Message types on the wire.
const (
	msgSubmitBatch  = "compare.batch.submit"
	msgVerdictBatch = "compare.batch.verdict"
)

// BatchConfig describes one batch-comparison run.
type BatchConfig struct {
	// Holders are the two nodes with per-key private values; the
	// comparison sign is holder[0] vs holder[1].
	Holders [2]string
	// TTP is the blind comparison node, distinct from both holders.
	TTP string
	// MaxAbs bounds |value| for every submitted value.
	MaxAbs *big.Int
	// Session disambiguates concurrent runs.
	Session string
	// Rand is the entropy source; nil means crypto/rand.
	Rand io.Reader
}

func (c *BatchConfig) validate() error {
	if c.Holders[0] == "" || c.Holders[1] == "" || c.Holders[0] == c.Holders[1] {
		return fmt.Errorf("%w: need two distinct holders", smc.ErrProtocol)
	}
	if c.TTP == "" || c.TTP == c.Holders[0] || c.TTP == c.Holders[1] {
		return fmt.Errorf("%w: TTP must be a third party", smc.ErrProtocol)
	}
	if c.MaxAbs == nil || c.MaxAbs.Sign() <= 0 {
		return fmt.Errorf("%w: missing value bound", smc.ErrProtocol)
	}
	if c.Session == "" {
		return fmt.Errorf("%w: empty session", smc.ErrProtocol)
	}
	return nil
}

type batchSubmitBody struct {
	Keys []string `json:"keys"`
	Ws   []string `json:"ws"`
}

type batchVerdictBody struct {
	// Signs[i] is -1, 0, or +1: holder0's value vs holder1's for Keys[i].
	Keys  []string `json:"keys"`
	Signs []int    `json:"signs"`
}

// BatchCompare executes a holder's role: keys and values are parallel
// slices (keys must be identical, in identical order, on both holders —
// the audit layer aligns them beforehand). Returns sign(holder0[k] -
// holder1[k]) for every key.
func BatchCompare(ctx context.Context, mb *transport.Mailbox, cfg BatchConfig, keys []string, values []*big.Int) (map[string]int, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(keys) != len(values) {
		return nil, fmt.Errorf("%w: %d keys for %d values", smc.ErrProtocol, len(keys), len(values))
	}
	self := mb.ID()
	var peer string
	switch self {
	case cfg.Holders[0]:
		peer = cfg.Holders[1]
	case cfg.Holders[1]:
		peer = cfg.Holders[0]
	default:
		return nil, fmt.Errorf("%w: %q is not a holder", smc.ErrProtocol, self)
	}
	for i, v := range values {
		if v == nil || new(big.Int).Abs(v).Cmp(cfg.MaxAbs) > 0 {
			return nil, fmt.Errorf("%w: value %d out of [-MaxAbs, MaxAbs]", smc.ErrProtocol, i)
		}
	}
	// Joint strictly monotone transform over the integers.
	bound := new(big.Int).Lsh(cfg.MaxAbs, 64)
	a, b, err := jointSecret(ctx, mb, cfg.Rand, bound, []string{peer}, cfg.Session)
	if err != nil {
		return nil, err
	}
	ws := make([]string, len(values))
	if err := workpool.Map(len(values), func(i int) error {
		w := new(big.Int).Mul(a, values[i])
		w.Add(w, b)
		ws[i] = smc.EncodeBig(w)
		return nil
	}); err != nil {
		return nil, err
	}
	if err := send(ctx, mb, cfg.TTP, msgSubmitBatch, cfg.Session, batchSubmitBody{Keys: keys, Ws: ws}); err != nil {
		return nil, err
	}
	msg, err := mb.Expect(ctx, msgVerdictBatch, cfg.Session)
	if err != nil {
		return nil, fmt.Errorf("compare: awaiting batch verdict: %w", err)
	}
	var verdict batchVerdictBody
	if err := transport.Unmarshal(msg.Payload, &verdict); err != nil {
		return nil, err
	}
	if len(verdict.Keys) != len(verdict.Signs) {
		return nil, fmt.Errorf("%w: malformed verdict", smc.ErrProtocol)
	}
	out := make(map[string]int, len(verdict.Keys))
	for i, k := range verdict.Keys {
		out[k] = verdict.Signs[i]
	}
	return out, nil
}

// ServeBatchCompare executes the TTP role for one batch run.
func ServeBatchCompare(ctx context.Context, mb *transport.Mailbox, cfg BatchConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	subs := make(map[string]batchSubmitBody, 2)
	for len(subs) < 2 {
		msg, err := mb.Expect(ctx, msgSubmitBatch, cfg.Session)
		if err != nil {
			return fmt.Errorf("compare: awaiting batch submissions: %w", err)
		}
		if msg.From != cfg.Holders[0] && msg.From != cfg.Holders[1] {
			return fmt.Errorf("%w: submission from non-holder %q", smc.ErrProtocol, msg.From)
		}
		var body batchSubmitBody
		if err := transport.Unmarshal(msg.Payload, &body); err != nil {
			return err
		}
		subs[msg.From] = body
	}
	s0, s1 := subs[cfg.Holders[0]], subs[cfg.Holders[1]]
	if len(s0.Keys) != len(s1.Keys) {
		return fmt.Errorf("%w: holders submitted %d and %d keys", smc.ErrProtocol, len(s0.Keys), len(s1.Keys))
	}
	if len(s0.Ws) != len(s0.Keys) || len(s1.Ws) != len(s1.Keys) {
		return fmt.Errorf("%w: submission width mismatch", smc.ErrProtocol)
	}
	verdict := batchVerdictBody{Keys: s0.Keys, Signs: make([]int, len(s0.Keys))}
	if err := workpool.Map(len(s0.Keys), func(i int) error {
		if s0.Keys[i] != s1.Keys[i] {
			return fmt.Errorf("%w: key order mismatch at %d", smc.ErrProtocol, i)
		}
		w0, err := smc.DecodeBig(s0.Ws[i])
		if err != nil {
			return err
		}
		w1, err := smc.DecodeBig(s1.Ws[i])
		if err != nil {
			return err
		}
		verdict.Signs[i] = w0.Cmp(w1)
		return nil
	}); err != nil {
		return err
	}
	for _, h := range cfg.Holders {
		if err := send(ctx, mb, h, msgVerdictBatch, cfg.Session, verdict); err != nil {
			return err
		}
	}
	return nil
}
