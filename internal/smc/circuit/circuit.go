// Package circuit provides boolean circuits over XOR/AND/NOT gates plus
// builders for the comparison and arithmetic circuits the classical-SMC
// baseline needs (equality, unsigned less-than, ripple-carry addition).
// Circuits are consumed by the garbled-circuit evaluator in
// internal/smc/garbled and by its plaintext reference evaluator here.
package circuit

import (
	"errors"
	"fmt"
)

// GateKind discriminates gate types.
type GateKind int

// Gate kinds. Start at one so the zero value is invalid.
const (
	GateXOR GateKind = iota + 1
	GateAND
	GateNOT
)

// Gate is one boolean gate. Wires are integer indices; NOT ignores B.
type Gate struct {
	Kind GateKind
	A    int
	B    int
	Out  int
}

// Circuit is a boolean circuit with two input bundles (one per party)
// followed by gate-defined wires.
//
// Wire layout: wires [0, NIn1) are party-1 inputs, [NIn1, NIn1+NIn2) are
// party-2 inputs, and gates append further wires.
type Circuit struct {
	// NIn1 and NIn2 are the input widths of the two parties.
	NIn1, NIn2 int
	// NWires is the total wire count.
	NWires int
	// Gates are in topological order.
	Gates []Gate
	// Outputs lists the output wire indices.
	Outputs []int
}

// Errors reported by the package.
var (
	// ErrBadInput indicates an input vector of the wrong width.
	ErrBadInput = errors.New("circuit: wrong input width")
	// ErrMalformed indicates a structurally invalid circuit.
	ErrMalformed = errors.New("circuit: malformed circuit")
)

// Validate checks structural sanity: gates in topological order reading
// only earlier wires, every output wire defined.
func (c *Circuit) Validate() error {
	if c.NIn1 < 0 || c.NIn2 < 0 {
		return fmt.Errorf("%w: negative input width", ErrMalformed)
	}
	defined := c.NIn1 + c.NIn2
	for i, g := range c.Gates {
		switch g.Kind {
		case GateXOR, GateAND:
			if g.A >= defined || g.B >= defined || g.A < 0 || g.B < 0 {
				return fmt.Errorf("%w: gate %d reads undefined wire", ErrMalformed, i)
			}
		case GateNOT:
			if g.A >= defined || g.A < 0 {
				return fmt.Errorf("%w: gate %d reads undefined wire", ErrMalformed, i)
			}
		default:
			return fmt.Errorf("%w: gate %d has unknown kind %d", ErrMalformed, i, g.Kind)
		}
		if g.Out != defined {
			return fmt.Errorf("%w: gate %d writes wire %d, want %d", ErrMalformed, i, g.Out, defined)
		}
		defined++
	}
	if defined != c.NWires {
		return fmt.Errorf("%w: %d wires defined, NWires=%d", ErrMalformed, defined, c.NWires)
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= c.NWires {
			return fmt.Errorf("%w: output wire %d undefined", ErrMalformed, o)
		}
	}
	return nil
}

// Eval runs the circuit in plaintext; the reference semantics for both
// tests and the garbled evaluator.
func (c *Circuit) Eval(in1, in2 []bool) ([]bool, error) {
	if len(in1) != c.NIn1 || len(in2) != c.NIn2 {
		return nil, fmt.Errorf("%w: got %d+%d, want %d+%d", ErrBadInput, len(in1), len(in2), c.NIn1, c.NIn2)
	}
	wires := make([]bool, c.NWires)
	copy(wires, in1)
	copy(wires[c.NIn1:], in2)
	for _, g := range c.Gates {
		switch g.Kind {
		case GateXOR:
			wires[g.Out] = wires[g.A] != wires[g.B]
		case GateAND:
			wires[g.Out] = wires[g.A] && wires[g.B]
		case GateNOT:
			wires[g.Out] = !wires[g.A]
		default:
			return nil, fmt.Errorf("%w: unknown gate kind %d", ErrMalformed, g.Kind)
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, o := range c.Outputs {
		out[i] = wires[o]
	}
	return out, nil
}

// CountAND returns the number of AND gates, the conventional cost metric
// for garbled circuits.
func (c *Circuit) CountAND() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == GateAND {
			n++
		}
	}
	return n
}

// builder incrementally constructs circuits.
type builder struct {
	c *Circuit
}

func newBuilder(nIn1, nIn2 int) *builder {
	return &builder{c: &Circuit{NIn1: nIn1, NIn2: nIn2, NWires: nIn1 + nIn2}}
}

func (b *builder) gate(kind GateKind, a, bw int) int {
	out := b.c.NWires
	b.c.Gates = append(b.c.Gates, Gate{Kind: kind, A: a, B: bw, Out: out})
	b.c.NWires++
	return out
}

func (b *builder) xor(a, c int) int { return b.gate(GateXOR, a, c) }
func (b *builder) and(a, c int) int { return b.gate(GateAND, a, c) }
func (b *builder) not(a int) int    { return b.gate(GateNOT, a, 0) }

// or computes a∨b = (a⊕b)⊕(a∧b).
func (b *builder) or(a, c int) int {
	return b.xor(b.xor(a, c), b.and(a, c))
}

// xnor computes equality of two bits.
func (b *builder) xnor(a, c int) int { return b.not(b.xor(a, c)) }

// Equality builds a circuit with one output that is 1 iff the two
// bits-wide inputs are equal.
func Equality(bits int) *Circuit {
	b := newBuilder(bits, bits)
	acc := -1
	for i := 0; i < bits; i++ {
		eq := b.xnor(i, bits+i)
		if acc < 0 {
			acc = eq
		} else {
			acc = b.and(acc, eq)
		}
	}
	b.c.Outputs = []int{acc}
	return b.c
}

// LessThan builds a circuit with one output that is 1 iff input1 <
// input2 as unsigned bits-wide integers (bit 0 = LSB).
func LessThan(bits int) *Circuit {
	b := newBuilder(bits, bits)
	lt := -1
	for i := 0; i < bits; i++ { // LSB to MSB ripple
		x, y := i, bits+i
		xiLTyi := b.and(b.not(x), y)
		if lt < 0 {
			lt = xiLTyi
			continue
		}
		eq := b.xnor(x, y)
		lt = b.or(xiLTyi, b.and(eq, lt))
	}
	b.c.Outputs = []int{lt}
	return b.c
}

// Adder builds a ripple-carry adder: inputs are two bits-wide unsigned
// integers, outputs are bits+1 sum bits (LSB first, final carry last).
func Adder(bits int) *Circuit {
	b := newBuilder(bits, bits)
	outs := make([]int, 0, bits+1)
	carry := -1
	for i := 0; i < bits; i++ {
		x, y := i, bits+i
		xXy := b.xor(x, y)
		if carry < 0 {
			outs = append(outs, xXy)
			carry = b.and(x, y)
			continue
		}
		s := b.xor(xXy, carry)
		cout := b.xor(b.and(x, y), b.and(carry, xXy))
		outs = append(outs, s)
		carry = cout
	}
	outs = append(outs, carry)
	b.c.Outputs = outs
	return b.c
}

// Uint64ToBits converts v to its low `bits` bits, LSB first.
func Uint64ToBits(v uint64, bits int) []bool {
	out := make([]bool, bits)
	for i := 0; i < bits; i++ {
		out[i] = v&(1<<uint(i)) != 0
	}
	return out
}

// BitsToUint64 converts LSB-first bits to an integer.
func BitsToUint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
