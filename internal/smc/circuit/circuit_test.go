package circuit

import (
	"testing"
	"testing/quick"
)

func TestEqualityCircuit(t *testing.T) {
	c := Equality(8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y uint64
		want bool
	}{
		{0, 0, true},
		{255, 255, true},
		{1, 2, false},
		{0x80, 0x00, false},
		{42, 42, true},
	}
	for _, tc := range cases {
		out, err := c.Eval(Uint64ToBits(tc.x, 8), Uint64ToBits(tc.y, 8))
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want {
			t.Fatalf("Equality(%d, %d) = %v, want %v", tc.x, tc.y, out[0], tc.want)
		}
	}
}

func TestLessThanCircuit(t *testing.T) {
	c := LessThan(8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y uint64
		want bool
	}{
		{0, 0, false},
		{0, 1, true},
		{1, 0, false},
		{127, 128, true},
		{255, 0, false},
		{200, 201, true},
	}
	for _, tc := range cases {
		out, err := c.Eval(Uint64ToBits(tc.x, 8), Uint64ToBits(tc.y, 8))
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.want {
			t.Fatalf("LessThan(%d, %d) = %v, want %v", tc.x, tc.y, out[0], tc.want)
		}
	}
}

func TestAdderCircuit(t *testing.T) {
	c := Adder(8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, y uint64 }{
		{0, 0}, {1, 1}, {255, 255}, {128, 127}, {200, 100},
	}
	for _, tc := range cases {
		out, err := c.Eval(Uint64ToBits(tc.x, 8), Uint64ToBits(tc.y, 8))
		if err != nil {
			t.Fatal(err)
		}
		if got := BitsToUint64(out); got != tc.x+tc.y {
			t.Fatalf("Adder(%d, %d) = %d, want %d", tc.x, tc.y, got, tc.x+tc.y)
		}
	}
}

func TestCircuitsQuick(t *testing.T) {
	eq := Equality(16)
	lt := LessThan(16)
	add := Adder(16)
	f := func(x, y uint16) bool {
		bx, by := Uint64ToBits(uint64(x), 16), Uint64ToBits(uint64(y), 16)
		oe, err := eq.Eval(bx, by)
		if err != nil || oe[0] != (x == y) {
			return false
		}
		ol, err := lt.Eval(bx, by)
		if err != nil || ol[0] != (x < y) {
			return false
		}
		oa, err := add.Eval(bx, by)
		if err != nil || BitsToUint64(oa) != uint64(x)+uint64(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalInputWidth(t *testing.T) {
	c := Equality(8)
	if _, err := c.Eval(make([]bool, 7), make([]bool, 8)); err == nil {
		t.Fatal("short input accepted")
	}
	if _, err := c.Eval(make([]bool, 8), make([]bool, 9)); err == nil {
		t.Fatal("long input accepted")
	}
}

func TestValidateCatchesMalformed(t *testing.T) {
	cases := []struct {
		name string
		c    *Circuit
	}{
		{"forward ref", &Circuit{NIn1: 1, NIn2: 1, NWires: 3, Gates: []Gate{{Kind: GateAND, A: 0, B: 5, Out: 2}}}},
		{"bad out wire", &Circuit{NIn1: 1, NIn2: 1, NWires: 3, Gates: []Gate{{Kind: GateAND, A: 0, B: 1, Out: 5}}}},
		{"unknown kind", &Circuit{NIn1: 1, NIn2: 1, NWires: 3, Gates: []Gate{{Kind: GateKind(9), A: 0, B: 1, Out: 2}}}},
		{"wire count", &Circuit{NIn1: 1, NIn2: 1, NWires: 9, Gates: []Gate{{Kind: GateXOR, A: 0, B: 1, Out: 2}}}},
		{"bad output", &Circuit{NIn1: 1, NIn2: 1, NWires: 2, Outputs: []int{7}}},
		{"negative input", &Circuit{NIn1: -1, NIn2: 1, NWires: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.c.Validate(); err == nil {
				t.Fatal("malformed circuit validated")
			}
		})
	}
}

func TestCountAND(t *testing.T) {
	c := Equality(8)
	// 8 XNORs (8 XOR + 8 NOT) + 7 ANDs in the tree.
	if got := c.CountAND(); got != 7 {
		t.Fatalf("CountAND = %d, want 7", got)
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		return BitsToUint64(Uint64ToBits(uint64(v), 32)) == uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEval32BitLessThan(b *testing.B) {
	c := LessThan(32)
	x := Uint64ToBits(123456, 32)
	y := Uint64ToBits(654321, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Eval(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
