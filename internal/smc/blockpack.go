package smc

import (
	"fmt"

	"confaudit/internal/telemetry"
)

// Packed ciphertext-block encoding for relay bodies.
//
// A relayed set is a slice of fixed-width group elements. Encoded as a
// JSON [][]byte it pays per-block base64 framing — for a 96-byte block,
// 128 base64 characters plus quotes and comma, repeated per element —
// and per-block allocations on both ends. Packing the blocks into one
// contiguous byte string amortizes the framing to a single field and
// one allocation, and gives the binary envelope codec a single raw
// payload run to carry. Only block COUNT and WIDTH are visible in the
// encoding — the secondary information Definition 1 already concedes —
// and the bytes themselves are the same ciphertexts that travelled in
// the legacy encoding.

// PackBlocks concatenates fixed-width blocks into one byte string.
// ok is false when the blocks are not uniform (callers then fall back
// to the element-wise legacy encoding).
func PackBlocks(blocks [][]byte) (packed []byte, blockLen int, ok bool) {
	if len(blocks) == 0 {
		return nil, 0, true
	}
	blockLen = len(blocks[0])
	if blockLen == 0 {
		return nil, 0, false
	}
	for _, b := range blocks {
		if len(b) != blockLen {
			return nil, 0, false
		}
	}
	packed = make([]byte, 0, blockLen*len(blocks))
	for _, b := range blocks {
		packed = append(packed, b...)
	}
	observePack(len(blocks), blockLen)
	return packed, blockLen, true
}

// UnpackBlocks splits a packed byte string back into blocks.
func UnpackBlocks(packed []byte, blockLen int) ([][]byte, error) {
	if len(packed) == 0 {
		return nil, nil
	}
	if blockLen <= 0 || len(packed)%blockLen != 0 {
		return nil, fmt.Errorf("%w: packed run of %d bytes is not a multiple of block width %d", ErrProtocol, len(packed), blockLen)
	}
	n := len(packed) / blockLen
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[i] = packed[i*blockLen : (i+1)*blockLen : (i+1)*blockLen]
	}
	return out, nil
}

// observePack records the bytes framed by the packed encoding and the
// JSON/base64 inflation it avoided versus the element-wise legacy
// encoding. Both figures derive only from block count and width.
func observePack(n, blockLen int) {
	total := n * blockLen
	b64 := func(m int) int { return (m + 2) / 3 * 4 }
	// Legacy: per block, a base64 string plus quotes and comma;
	// packed: one base64 string.
	legacy := n * (b64(blockLen) + 3)
	telemetry.M.Counter(telemetry.CtrCodecBytesSent).Add(int64(total))
	if saved := legacy - (b64(total) + 2); saved > 0 {
		telemetry.M.Counter(telemetry.CtrCodecBytesSaved).Add(int64(saved))
	}
}
