package integrity

import (
	"context"
	"sync"
	"testing"

	"confaudit/internal/logmodel"
	"confaudit/internal/transport"
)

// remoteRig extends the base rig with ServeRequests loops and a client.
func newRemoteRig(t *testing.T) (*rig, *transport.Mailbox) {
	t.Helper()
	r := newRig(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, id := range r.ring {
		store := r.stores[id]
		mb := r.mbs[id]
		list := func() []logmodel.GLSN {
			store.mu.RLock()
			defer store.mu.RUnlock()
			out := make([]logmodel.GLSN, 0, len(store.frags))
			for g := range store.frags {
				out = append(out, g)
			}
			return out
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ServeRequests(ctx, mb, r.ring, r.params, store, list) //nolint:errcheck
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })

	// Client mailbox on the same network as the rig nodes: attach via a
	// fresh endpoint. The rig's network is private, so reuse P0's net by
	// dialing through the existing transport: newRig owns the network,
	// so we add the client inside it.
	client := r.clientMailbox(t)
	return r, client
}

func TestRemoteCheckClean(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r, client := newRemoteRig(t)
	ctx := testCtx(t)
	for _, rec := range ex.Records {
		r.logRecord(t, ex, rec)
	}
	rep, err := RequestCheck(ctx, client, r.ring[0], "rc-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 5 || !rep.Clean() {
		t.Fatalf("report %+v", rep)
	}
}

func TestRemoteCheckFindsCorruption(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r, client := newRemoteRig(t)
	ctx := testCtx(t)
	for _, rec := range ex.Records {
		r.logRecord(t, ex, rec)
	}
	s := r.stores["P1"]
	s.mu.Lock()
	frag := s.frags[ex.Records[2].GLSN]
	frag.Values["id"] = logmodel.String("FORGED")
	s.frags[ex.Records[2].GLSN] = frag
	s.mu.Unlock()

	rep, err := RequestCheck(ctx, client, r.ring[0], "rc-2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.Corrupted) != 1 || rep.Corrupted[0] != ex.Records[2].GLSN {
		t.Fatalf("report %+v", rep)
	}
}

func TestRemoteCheckSubset(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r, client := newRemoteRig(t)
	ctx := testCtx(t)
	for _, rec := range ex.Records {
		r.logRecord(t, ex, rec)
	}
	rep, err := RequestCheck(ctx, client, r.ring[0], "rc-3", []logmodel.GLSN{ex.Records[0].GLSN, ex.Records[1].GLSN})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 2 {
		t.Fatalf("checked %d, want 2", rep.Checked)
	}
}
