package integrity

import (
	"context"
	"crypto/rand"
	"errors"
	"math/big"
	"sync"
	"testing"
	"time"

	"confaudit/internal/crypto/accumulator"
	"confaudit/internal/logmodel"
	"confaudit/internal/transport"
)

// memStore is a minimal Store for tests.
type memStore struct {
	mu      sync.RWMutex
	frags   map[logmodel.GLSN]logmodel.Fragment
	digests map[logmodel.GLSN]*big.Int
}

func newMemStore() *memStore {
	return &memStore{
		frags:   make(map[logmodel.GLSN]logmodel.Fragment),
		digests: make(map[logmodel.GLSN]*big.Int),
	}
}

func (s *memStore) Fragment(g logmodel.GLSN) (logmodel.Fragment, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.frags[g]
	return f, ok
}

func (s *memStore) Digest(g logmodel.GLSN) (*big.Int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.digests[g]
	return d, ok
}

type rig struct {
	ring   []string
	params *accumulator.Params
	stores map[string]*memStore
	mbs    map[string]*transport.Mailbox
	net    *transport.MemNetwork
	cancel context.CancelFunc
}

// clientMailbox attaches an external client to the rig's network.
func (r *rig) clientMailbox(t *testing.T) *transport.Mailbox {
	t.Helper()
	ep, err := r.net.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	mb := transport.NewMailbox(ep)
	t.Cleanup(func() { mb.Close() }) //nolint:errcheck
	return mb
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	params, err := accumulator.GenerateParams(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMemNetwork()
	ctx, cancel := context.WithCancel(context.Background())
	r := &rig{
		params: params,
		stores: make(map[string]*memStore),
		mbs:    make(map[string]*transport.Mailbox),
		net:    net,
		cancel: cancel,
	}
	for i := 0; i < n; i++ {
		id := "P" + string(rune('0'+i))
		r.ring = append(r.ring, id)
		ep, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		r.mbs[id] = transport.NewMailbox(ep)
		r.stores[id] = newMemStore()
	}
	var wg sync.WaitGroup
	for _, id := range r.ring {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			Serve(ctx, r.mbs[id], r.ring, params, r.stores[id]) //nolint:errcheck
		}(id)
	}
	t.Cleanup(func() {
		cancel()
		for _, mb := range r.mbs {
			mb.Close() //nolint:errcheck
		}
		net.Close() //nolint:errcheck
		wg.Wait()
	})
	return r
}

// logRecord fragments a record across the rig and installs the digest
// everywhere, mimicking the client's §4.1 behaviour.
func (r *rig) logRecord(t *testing.T, ex *logmodel.PaperExample, rec logmodel.Record) {
	t.Helper()
	frags := ex.Partition.Split(rec)
	items := make([][]byte, 0, len(frags))
	for _, node := range ex.Partition.Nodes() {
		items = append(items, frags[node].Canonical())
	}
	digest := r.params.AccumulateAll(items)
	for node, frag := range frags {
		s := r.stores[node]
		s.mu.Lock()
		s.frags[rec.GLSN] = frag
		s.digests[rec.GLSN] = digest
		s.mu.Unlock()
	}
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestCheckCleanRecord(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, 4)
	ctx := testCtx(t)
	for _, rec := range ex.Records {
		r.logRecord(t, ex, rec)
	}
	// Any node can initiate the check, for any record.
	for _, initiator := range r.ring {
		for _, rec := range ex.Records {
			if err := Check(ctx, r.mbs[initiator], r.ring, r.params, r.stores[initiator], rec.GLSN); err != nil {
				t.Fatalf("clean record %s flagged from %s: %v", rec.GLSN, initiator, err)
			}
		}
	}
}

func TestCheckDetectsTamperedFragment(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[0]
	r.logRecord(t, ex, rec)

	// A compromised P2 silently modifies its fragment (changes the
	// transaction ID).
	s := r.stores["P2"]
	s.mu.Lock()
	frag := s.frags[rec.GLSN]
	frag.Values["Tid"] = logmodel.String("T9999999")
	s.frags[rec.GLSN] = frag
	s.mu.Unlock()

	err = Check(ctx, r.mbs["P0"], r.ring, r.params, r.stores["P0"], rec.GLSN)
	if err == nil {
		t.Fatal("tampered fragment not detected")
	}
	if errors.Is(err, ErrNoDigest) || errors.Is(err, ErrFragmentMissing) {
		t.Fatalf("wrong failure class: %v", err)
	}
}

func TestCheckDetectsDeletedFragment(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[1]
	r.logRecord(t, ex, rec)

	s := r.stores["P3"]
	s.mu.Lock()
	delete(s.frags, rec.GLSN)
	s.mu.Unlock()

	err = Check(ctx, r.mbs["P0"], r.ring, r.params, r.stores["P0"], rec.GLSN)
	if !errors.Is(err, ErrFragmentMissing) {
		t.Fatalf("err = %v, want ErrFragmentMissing", err)
	}
}

func TestCheckNoDigest(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[2]
	// Install fragments but no digests.
	frags := ex.Partition.Split(rec)
	for node, frag := range frags {
		s := r.stores[node]
		s.mu.Lock()
		s.frags[rec.GLSN] = frag
		s.mu.Unlock()
	}
	err = Check(ctx, r.mbs["P1"], r.ring, r.params, r.stores["P1"], rec.GLSN)
	if !errors.Is(err, ErrNoDigest) {
		t.Fatalf("err = %v, want ErrNoDigest", err)
	}
}

func TestCheckAllSweep(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, 4)
	ctx := testCtx(t)
	glsns := make([]logmodel.GLSN, 0, len(ex.Records))
	for _, rec := range ex.Records {
		r.logRecord(t, ex, rec)
		glsns = append(glsns, rec.GLSN)
	}
	// Tamper with exactly one record on one node.
	s := r.stores["P1"]
	s.mu.Lock()
	frag := s.frags[ex.Records[3].GLSN]
	frag.Values["C2"] = logmodel.Float(0.01)
	s.frags[ex.Records[3].GLSN] = frag
	s.mu.Unlock()

	rep := CheckAll(ctx, r.mbs["P0"], r.ring, r.params, r.stores["P0"], glsns)
	if rep.Checked != 5 {
		t.Fatalf("checked %d, want 5", rep.Checked)
	}
	if len(rep.Corrupted) != 1 || rep.Corrupted[0] != ex.Records[3].GLSN {
		t.Fatalf("corrupted = %v, want [%s]", rep.Corrupted, ex.Records[3].GLSN)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("unexpected errors: %v", rep.Errors)
	}
	if rep.Clean() {
		t.Fatal("report with corruption claims clean")
	}
}

func TestConcurrentChecksFromAllNodes(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, 4)
	ctx := testCtx(t)
	for _, rec := range ex.Records {
		r.logRecord(t, ex, rec)
	}
	var wg sync.WaitGroup
	for _, initiator := range r.ring {
		wg.Add(1)
		go func(initiator string) {
			defer wg.Done()
			for _, rec := range ex.Records {
				if err := Check(ctx, r.mbs[initiator], r.ring, r.params, r.stores[initiator], rec.GLSN); err != nil {
					t.Errorf("%s checking %s: %v", initiator, rec.GLSN, err)
				}
			}
		}(initiator)
	}
	wg.Wait()
}

func TestCheckNotInRing(t *testing.T) {
	r := newRig(t, 3)
	ctx := testCtx(t)
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ep, err := net.Endpoint("outsider")
	if err != nil {
		t.Fatal(err)
	}
	mb := transport.NewMailbox(ep)
	defer mb.Close() //nolint:errcheck
	if err := Check(ctx, mb, r.ring, r.params, newMemStore(), 1); err == nil {
		t.Fatal("outsider check accepted")
	}
}
