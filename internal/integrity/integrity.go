// Package integrity implements the paper's distributed integrity
// cross-checking algorithm (§4.1): when a user logs a record it sends
// every DLA node the one-way-accumulator digest A(x0, Log_0..Log_{n-1})
// over all fragments; any node can later verify the record by
// circulating a partial accumulation around the ring — each node folds
// in the canonical encoding of its own stored fragment — and comparing
// the value that returns with the stored digest. Commutativity (eq. 9)
// makes the ring order irrelevant, and no node reveals its fragment to
// the others: only accumulator values travel.
package integrity

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"sync"
	"sync/atomic"

	"confaudit/internal/crypto/accumulator"
	"confaudit/internal/logmodel"
	"confaudit/internal/smc"
	"confaudit/internal/transport"
)

// Message types: relays travel as MsgCirculate; the full-circle value
// returns to the initiator as MsgResult so responder loops never consume
// it. Witness-backed checks use MsgAttest/MsgAttestResult instead: one
// parallel round trip per peer, each peer verifying its own fragment
// locally.
const (
	MsgCirculate    = "integrity.circulate"
	MsgResult       = "integrity.result"
	MsgAttest       = "integrity.attest"
	MsgAttestResult = "integrity.attest_result"
)

// Errors reported by integrity checking.
var (
	// ErrNoDigest indicates a record with no stored digest to verify
	// against.
	ErrNoDigest = errors.New("integrity: no stored digest")
	// ErrFragmentMissing indicates a ring node without the fragment.
	ErrFragmentMissing = errors.New("integrity: fragment missing on a node")
	// ErrNoWitness indicates a record stored without a membership
	// witness (a pre-witness writer), so only circulation can verify it.
	ErrNoWitness = errors.New("integrity: no stored witness")
)

// Store is the node-local state the protocol reads: the fragment and
// the user-supplied record digest for a glsn.
type Store interface {
	Fragment(g logmodel.GLSN) (logmodel.Fragment, bool)
	Digest(g logmodel.GLSN) (*big.Int, bool)
}

// WitnessStore is the optional extension a store implements when the
// writer shipped per-node membership witnesses at log time. With a
// witness, a node verifies its fragment against the record digest in
// one local exponentiation — no ring traffic — and a whole-record check
// becomes one parallel attest round instead of a sequential
// circulation.
type WitnessStore interface {
	Witness(g logmodel.GLSN) (*big.Int, bool)
}

type circulateBody struct {
	GLSN      logmodel.GLSN `json:"glsn"`
	Initiator string        `json:"initiator"`
	Hops      int           `json:"hops"`
	Value     *big.Int      `json:"value"`
	// Missing is set when some ring node had no fragment for the glsn.
	Missing string `json:"missing,omitempty"`
}

// Serve runs the responder loops — circulation relay and witness
// attestation — until ctx is cancelled or the mailbox closes. Every
// ring node (including check initiators) must run Serve.
func Serve(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store) error {
	done := make(chan error, 1)
	go func() { done <- serveAttest(ctx, mb, params, store) }()
	err := serveCirculate(ctx, mb, ring, params, store)
	if aerr := <-done; err == nil {
		err = aerr
	}
	return err
}

// serveCirculate folds the local fragment into incoming partial
// accumulations and forwards them along the ring.
func serveCirculate(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store) error {
	self := mb.ID()
	next, err := smc.NextInRing(ring, self)
	if err != nil {
		return err
	}
	n := len(ring)
	for {
		msg, err := mb.ExpectType(ctx, MsgCirculate)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		var body circulateBody
		if err := transport.Unmarshal(msg.Payload, &body); err != nil {
			continue
		}
		if body.Hops >= n {
			continue // stale loop remnant; drop
		}
		if body.Missing == "" {
			if frag, ok := store.Fragment(body.GLSN); ok {
				body.Value = params.Accumulate(body.Value, frag.Canonical())
			} else {
				body.Missing = self
			}
		}
		body.Hops++
		typ, to := MsgCirculate, next
		if body.Hops == n {
			// Full circle: hand the result back to the initiator.
			typ, to = MsgResult, body.Initiator
		}
		out, err := transport.NewMessage(to, typ, msg.Session, body)
		if err != nil {
			continue
		}
		mb.Send(ctx, out) //nolint:errcheck // broken ring surfaces as initiator timeout
	}
}

type attestBody struct {
	GLSN      logmodel.GLSN `json:"glsn"`
	Initiator string        `json:"initiator"`
}

type attestResult struct {
	GLSN logmodel.GLSN `json:"glsn"`
	// OK reports that the responder's fragment verified against its
	// witness and the stored digest. Any other outcome — no witness, no
	// digest, missing fragment, mismatch — leaves OK false and sends the
	// initiator back to authoritative circulation.
	OK bool `json:"ok"`
}

// serveAttest answers witness attestation requests: verify the local
// fragment against the local witness and digest, reply with the verdict.
func serveAttest(ctx context.Context, mb *transport.Mailbox, params *accumulator.Params, store Store) error {
	for {
		msg, err := mb.ExpectType(ctx, MsgAttest)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		var body attestBody
		if err := transport.Unmarshal(msg.Payload, &body); err != nil {
			continue
		}
		resp := attestResult{GLSN: body.GLSN, OK: CheckLocal(params, store, body.GLSN) == nil}
		out, err := transport.NewMessage(body.Initiator, MsgAttestResult, msg.Session, resp)
		if err != nil {
			continue
		}
		mb.Send(ctx, out) //nolint:errcheck // lost reply surfaces as initiator timeout
	}
}

// CheckLocal verifies this node's fragment against its stored witness
// and the record digest — one exponentiation, no messages. It returns
// ErrNoWitness when the record predates witness-shipping writers (only
// circulation can verify those).
func CheckLocal(params *accumulator.Params, store Store, g logmodel.GLSN) error {
	ws, ok := store.(WitnessStore)
	if !ok {
		return fmt.Errorf("%w: store does not maintain witnesses", ErrNoWitness)
	}
	w, ok := ws.Witness(g)
	if !ok {
		return fmt.Errorf("%w: glsn %s", ErrNoWitness, g)
	}
	digest, ok := store.Digest(g)
	if !ok {
		return fmt.Errorf("%w: glsn %s", ErrNoDigest, g)
	}
	frag, ok := store.Fragment(g)
	if !ok {
		return fmt.Errorf("%w: glsn %s", ErrFragmentMissing, g)
	}
	if !params.VerifyWitness(digest, w, frag.Canonical()) {
		return fmt.Errorf("integrity: witness mismatch for glsn %s: fragment tampered or corrupted", g)
	}
	return nil
}

// checkSeq makes concurrent checks from one node collision-free.
var checkSeq atomic.Uint64

// checkAttest runs the witness fast path for one glsn: verify the local
// fragment, then ask every peer to verify its own in parallel. It
// reports clean only when the local check and every peer's attestation
// pass; any other outcome (a peer without a witness, a mismatch, a
// transport failure) sends the caller back to circulation, which stays
// the authoritative verdict. The whole round is one parallel RTT, so a
// sweep's critical path drops from n sequential fold-and-forward hops
// per record to a single exchange.
func checkAttest(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store, g logmodel.GLSN) bool {
	self := mb.ID()
	if CheckLocal(params, store, g) != nil {
		return false
	}
	session := "iatt/" + self + "/" + g.String() + "/" + strconv.FormatUint(checkSeq.Add(1), 10)
	sent := 0
	for _, node := range ring {
		if node == self {
			continue
		}
		out, err := transport.NewMessage(node, MsgAttest, session, attestBody{GLSN: g, Initiator: self})
		if err != nil || mb.Send(ctx, out) != nil {
			break
		}
		sent++
	}
	clean := sent == len(ring)-1
	// Collect every reply that was solicited, even after a failure, so
	// stray results do not linger in the mailbox.
	for i := 0; i < sent; i++ {
		res, err := mb.Expect(ctx, MsgAttestResult, session)
		if err != nil {
			return false
		}
		var r attestResult
		if err := transport.Unmarshal(res.Payload, &r); err != nil || r.GLSN != g || !r.OK {
			clean = false
		}
	}
	return clean
}

// Check verifies one glsn against the stored digest. Witness-backed
// records take the attest fast path (one parallel round, each node
// verifying locally); records without witnesses — and any attest round
// that does not come back unanimously clean — fall back to circulating
// the accumulator around the ring. The caller's node must be a ring
// member running Serve (for other initiators' checks).
func Check(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store, g logmodel.GLSN) error {
	if ws, ok := store.(WitnessStore); ok {
		if _, ok := ws.Witness(g); ok && checkAttest(ctx, mb, ring, params, store, g) {
			return nil
		}
	}
	return checkCirculate(ctx, mb, ring, params, store, g)
}

// checkCirculate circulates the accumulator for one glsn around the
// ring and compares the result with the stored digest; the initiator's
// own fragment is folded in locally before the first hop.
func checkCirculate(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store, g logmodel.GLSN) error {
	self := mb.ID()
	next, err := smc.NextInRing(ring, self)
	if err != nil {
		return err
	}
	want, ok := store.Digest(g)
	if !ok {
		return fmt.Errorf("%w: glsn %s", ErrNoDigest, g)
	}
	frag, ok := store.Fragment(g)
	if !ok {
		return fmt.Errorf("%w: glsn %s on %s", ErrFragmentMissing, g, self)
	}
	session := "ichk/" + self + "/" + g.String() + "/" + strconv.FormatUint(checkSeq.Add(1), 10)
	body := circulateBody{
		GLSN:      g,
		Initiator: self,
		Hops:      1,
		Value:     params.Accumulate(params.X0, frag.Canonical()),
	}
	out, err := transport.NewMessage(next, MsgCirculate, session, body)
	if err != nil {
		return err
	}
	if err := mb.Send(ctx, out); err != nil {
		return fmt.Errorf("integrity: starting circulation: %w", err)
	}
	// The full-circle value comes back as MsgResult, which responder
	// loops never consume, so queuing order cannot lose it.
	res, err := mb.Expect(ctx, MsgResult, session)
	if err != nil {
		return fmt.Errorf("integrity: awaiting circulation: %w", err)
	}
	var final circulateBody
	if err := transport.Unmarshal(res.Payload, &final); err != nil {
		return err
	}
	if final.Missing != "" {
		return fmt.Errorf("%w: glsn %s on %s", ErrFragmentMissing, g, final.Missing)
	}
	if final.Hops != len(ring) {
		return fmt.Errorf("integrity: circulation returned after %d of %d hops", final.Hops, len(ring))
	}
	if final.Value == nil || final.Value.Cmp(want) != 0 {
		return fmt.Errorf("integrity: digest mismatch for glsn %s: record tampered or corrupted", g)
	}
	return nil
}

// Report summarizes a sweep over many records.
type Report struct {
	// Checked counts records examined.
	Checked int
	// Corrupted lists glsns whose circulation did not match the digest.
	Corrupted []logmodel.GLSN
	// Errors maps glsns to non-verdict failures (missing fragments,
	// transport errors).
	Errors map[logmodel.GLSN]error
}

// Clean reports whether the sweep found no problems.
func (r *Report) Clean() bool { return len(r.Corrupted) == 0 && len(r.Errors) == 0 }

// checkAllParallelism bounds how many circulations a sweep keeps in
// flight at once. Per-check sessions are collision-free (checkSeq), so
// overlapping circulations interleave safely on the ring; the bound
// keeps a large sweep from flooding peers' mailboxes.
var checkAllParallelism = 8

// CheckAll sweeps the given glsns, keeping several circulations in
// flight so ring latency overlaps. Mismatches are collected rather than
// aborting the sweep; the report lists corrupted glsns in input order.
func CheckAll(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store, glsns []logmodel.GLSN) *Report {
	rep := &Report{Checked: len(glsns), Errors: make(map[logmodel.GLSN]error)}
	errs := make([]error, len(glsns))
	sem := make(chan struct{}, checkAllParallelism)
	var wg sync.WaitGroup
	for i, g := range glsns {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, g logmodel.GLSN) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = Check(ctx, mb, ring, params, store, g)
		}(i, g)
	}
	wg.Wait()
	for i, g := range glsns {
		switch err := errs[i]; {
		case err == nil:
		case errors.Is(err, ErrNoDigest) || errors.Is(err, ErrFragmentMissing):
			rep.Errors[g] = err
		default:
			rep.Corrupted = append(rep.Corrupted, g)
		}
	}
	return rep
}
