// Package integrity implements the paper's distributed integrity
// cross-checking algorithm (§4.1): when a user logs a record it sends
// every DLA node the one-way-accumulator digest A(x0, Log_0..Log_{n-1})
// over all fragments; any node can later verify the record by
// circulating a partial accumulation around the ring — each node folds
// in the canonical encoding of its own stored fragment — and comparing
// the value that returns with the stored digest. Commutativity (eq. 9)
// makes the ring order irrelevant, and no node reveals its fragment to
// the others: only accumulator values travel.
package integrity

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"sync"
	"sync/atomic"

	"confaudit/internal/crypto/accumulator"
	"confaudit/internal/logmodel"
	"confaudit/internal/smc"
	"confaudit/internal/transport"
)

// Message types: relays travel as MsgCirculate; the full-circle value
// returns to the initiator as MsgResult so responder loops never consume
// it.
const (
	MsgCirculate = "integrity.circulate"
	MsgResult    = "integrity.result"
)

// Errors reported by integrity checking.
var (
	// ErrNoDigest indicates a record with no stored digest to verify
	// against.
	ErrNoDigest = errors.New("integrity: no stored digest")
	// ErrFragmentMissing indicates a ring node without the fragment.
	ErrFragmentMissing = errors.New("integrity: fragment missing on a node")
)

// Store is the node-local state the protocol reads: the fragment and
// the user-supplied record digest for a glsn.
type Store interface {
	Fragment(g logmodel.GLSN) (logmodel.Fragment, bool)
	Digest(g logmodel.GLSN) (*big.Int, bool)
}

type circulateBody struct {
	GLSN      logmodel.GLSN `json:"glsn"`
	Initiator string        `json:"initiator"`
	Hops      int           `json:"hops"`
	Value     *big.Int      `json:"value"`
	// Missing is set when some ring node had no fragment for the glsn.
	Missing string `json:"missing,omitempty"`
}

// Serve runs the responder loop: fold the local fragment into incoming
// partial accumulations and forward them along the ring. It returns when
// ctx is cancelled or the mailbox closes. Every ring node (including
// check initiators) must run Serve.
func Serve(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store) error {
	self := mb.ID()
	next, err := smc.NextInRing(ring, self)
	if err != nil {
		return err
	}
	n := len(ring)
	for {
		msg, err := mb.ExpectType(ctx, MsgCirculate)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		var body circulateBody
		if err := transport.Unmarshal(msg.Payload, &body); err != nil {
			continue
		}
		if body.Hops >= n {
			continue // stale loop remnant; drop
		}
		if body.Missing == "" {
			if frag, ok := store.Fragment(body.GLSN); ok {
				body.Value = params.Accumulate(body.Value, frag.Canonical())
			} else {
				body.Missing = self
			}
		}
		body.Hops++
		typ, to := MsgCirculate, next
		if body.Hops == n {
			// Full circle: hand the result back to the initiator.
			typ, to = MsgResult, body.Initiator
		}
		out, err := transport.NewMessage(to, typ, msg.Session, body)
		if err != nil {
			continue
		}
		mb.Send(ctx, out) //nolint:errcheck // broken ring surfaces as initiator timeout
	}
}

// checkSeq makes concurrent checks from one node collision-free.
var checkSeq atomic.Uint64

// Check circulates the accumulator for one glsn around the ring and
// compares the result with the stored digest. The caller's node must be
// a ring member running Serve (for other initiators' checks); its own
// fragment is folded in locally before the first hop.
func Check(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store, g logmodel.GLSN) error {
	self := mb.ID()
	next, err := smc.NextInRing(ring, self)
	if err != nil {
		return err
	}
	want, ok := store.Digest(g)
	if !ok {
		return fmt.Errorf("%w: glsn %s", ErrNoDigest, g)
	}
	frag, ok := store.Fragment(g)
	if !ok {
		return fmt.Errorf("%w: glsn %s on %s", ErrFragmentMissing, g, self)
	}
	session := "ichk/" + self + "/" + g.String() + "/" + strconv.FormatUint(checkSeq.Add(1), 10)
	body := circulateBody{
		GLSN:      g,
		Initiator: self,
		Hops:      1,
		Value:     params.Accumulate(params.X0, frag.Canonical()),
	}
	out, err := transport.NewMessage(next, MsgCirculate, session, body)
	if err != nil {
		return err
	}
	if err := mb.Send(ctx, out); err != nil {
		return fmt.Errorf("integrity: starting circulation: %w", err)
	}
	// The full-circle value comes back as MsgResult, which responder
	// loops never consume, so queuing order cannot lose it.
	res, err := mb.Expect(ctx, MsgResult, session)
	if err != nil {
		return fmt.Errorf("integrity: awaiting circulation: %w", err)
	}
	var final circulateBody
	if err := transport.Unmarshal(res.Payload, &final); err != nil {
		return err
	}
	if final.Missing != "" {
		return fmt.Errorf("%w: glsn %s on %s", ErrFragmentMissing, g, final.Missing)
	}
	if final.Hops != len(ring) {
		return fmt.Errorf("integrity: circulation returned after %d of %d hops", final.Hops, len(ring))
	}
	if final.Value == nil || final.Value.Cmp(want) != 0 {
		return fmt.Errorf("integrity: digest mismatch for glsn %s: record tampered or corrupted", g)
	}
	return nil
}

// Report summarizes a sweep over many records.
type Report struct {
	// Checked counts records examined.
	Checked int
	// Corrupted lists glsns whose circulation did not match the digest.
	Corrupted []logmodel.GLSN
	// Errors maps glsns to non-verdict failures (missing fragments,
	// transport errors).
	Errors map[logmodel.GLSN]error
}

// Clean reports whether the sweep found no problems.
func (r *Report) Clean() bool { return len(r.Corrupted) == 0 && len(r.Errors) == 0 }

// checkAllParallelism bounds how many circulations a sweep keeps in
// flight at once. Per-check sessions are collision-free (checkSeq), so
// overlapping circulations interleave safely on the ring; the bound
// keeps a large sweep from flooding peers' mailboxes.
var checkAllParallelism = 8

// CheckAll sweeps the given glsns, keeping several circulations in
// flight so ring latency overlaps. Mismatches are collected rather than
// aborting the sweep; the report lists corrupted glsns in input order.
func CheckAll(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store, glsns []logmodel.GLSN) *Report {
	rep := &Report{Checked: len(glsns), Errors: make(map[logmodel.GLSN]error)}
	errs := make([]error, len(glsns))
	sem := make(chan struct{}, checkAllParallelism)
	var wg sync.WaitGroup
	for i, g := range glsns {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, g logmodel.GLSN) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = Check(ctx, mb, ring, params, store, g)
		}(i, g)
	}
	wg.Wait()
	for i, g := range glsns {
		switch err := errs[i]; {
		case err == nil:
		case errors.Is(err, ErrNoDigest) || errors.Is(err, ErrFragmentMissing):
			rep.Errors[g] = err
		default:
			rep.Corrupted = append(rep.Corrupted, g)
		}
	}
	return rep
}
