package integrity

import (
	"context"
	"errors"
	"fmt"

	"confaudit/internal/crypto/accumulator"
	"confaudit/internal/logmodel"
	"confaudit/internal/transport"
)

// Remote checking: authorized clients ask a DLA node to run the §4.1
// circulation sweep and return the report, so operators can audit
// integrity without shell access to a node (the dlactl `check` path).

// Message types of the remote-check subprotocol.
const (
	MsgCheckRequest = "integrity.request"
	MsgCheckReport  = "integrity.report"
)

type checkRequestBody struct {
	// GLSNs limits the sweep; empty means every stored record.
	GLSNs []string `json:"glsns,omitempty"`
}

type checkReportBody struct {
	Checked   int               `json:"checked"`
	Corrupted []string          `json:"corrupted,omitempty"`
	Errors    map[string]string `json:"errors,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// ServeRequests answers remote check requests on the node. list
// enumerates the node's stored glsns for whole-store sweeps.
func ServeRequests(ctx context.Context, mb *transport.Mailbox, ring []string, params *accumulator.Params, store Store, list func() []logmodel.GLSN) error {
	for {
		msg, err := mb.ExpectType(ctx, MsgCheckRequest)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, transport.ErrClosed) {
				return nil
			}
			return err
		}
		go func(msg transport.Message) {
			var req checkRequestBody
			var resp checkReportBody
			if err := transport.Unmarshal(msg.Payload, &req); err != nil {
				resp.Error = err.Error()
			} else {
				glsns, err := parseGLSNs(req.GLSNs)
				if err != nil {
					resp.Error = err.Error()
				} else {
					if len(glsns) == 0 {
						glsns = list()
					}
					rep := CheckAll(ctx, mb, ring, params, store, glsns)
					resp.Checked = rep.Checked
					for _, g := range rep.Corrupted {
						resp.Corrupted = append(resp.Corrupted, g.String())
					}
					if len(rep.Errors) > 0 {
						resp.Errors = make(map[string]string, len(rep.Errors))
						for g, err := range rep.Errors {
							resp.Errors[g.String()] = err.Error()
						}
					}
				}
			}
			out, err := transport.NewMessage(msg.From, MsgCheckReport, msg.Session, resp)
			if err != nil {
				return
			}
			mb.Send(ctx, out) //nolint:errcheck
		}(msg)
	}
}

func parseGLSNs(in []string) ([]logmodel.GLSN, error) {
	out := make([]logmodel.GLSN, 0, len(in))
	for _, s := range in {
		g, err := logmodel.ParseGLSN(s)
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
	return out, nil
}

// RequestCheck asks a node to sweep (all records when glsns is empty)
// and returns its report.
func RequestCheck(ctx context.Context, mb *transport.Mailbox, node, session string, glsns []logmodel.GLSN) (*Report, error) {
	req := checkRequestBody{}
	for _, g := range glsns {
		req.GLSNs = append(req.GLSNs, g.String())
	}
	msg, err := transport.NewMessage(node, MsgCheckRequest, session, req)
	if err != nil {
		return nil, err
	}
	if err := mb.Send(ctx, msg); err != nil {
		return nil, fmt.Errorf("integrity: requesting check: %w", err)
	}
	resp, err := mb.Expect(ctx, MsgCheckReport, session)
	if err != nil {
		return nil, fmt.Errorf("integrity: awaiting report: %w", err)
	}
	var body checkReportBody
	if err := transport.Unmarshal(resp.Payload, &body); err != nil {
		return nil, err
	}
	if body.Error != "" {
		return nil, fmt.Errorf("integrity: node refused: %s", body.Error)
	}
	rep := &Report{Checked: body.Checked, Errors: make(map[logmodel.GLSN]error)}
	for _, s := range body.Corrupted {
		g, err := logmodel.ParseGLSN(s)
		if err != nil {
			return nil, err
		}
		rep.Corrupted = append(rep.Corrupted, g)
	}
	for s, msg := range body.Errors {
		g, err := logmodel.ParseGLSN(s)
		if err != nil {
			return nil, err
		}
		rep.Errors[g] = errors.New(msg)
	}
	return rep, nil
}
