package integrity

import (
	"context"
	"errors"
	"math/big"
	"sync"
	"testing"

	"confaudit/internal/crypto/accumulator"
	"confaudit/internal/logmodel"
	"confaudit/internal/transport"
)

// witStore layers witnesses and per-method call counters over memStore,
// so tests can prove which protocol actually ran: a circulation folds
// Fragment on every responder, an attest round reads Witness and Digest
// there instead.
type witStore struct {
	*memStore
	cmu       sync.Mutex
	witnesses map[logmodel.GLSN]*big.Int
	fragCalls int
	digCalls  int
	witCalls  int
}

func newWitStore() *witStore {
	return &witStore{memStore: newMemStore(), witnesses: make(map[logmodel.GLSN]*big.Int)}
}

func (s *witStore) Fragment(g logmodel.GLSN) (logmodel.Fragment, bool) {
	s.cmu.Lock()
	s.fragCalls++
	s.cmu.Unlock()
	return s.memStore.Fragment(g)
}

func (s *witStore) Digest(g logmodel.GLSN) (*big.Int, bool) {
	s.cmu.Lock()
	s.digCalls++
	s.cmu.Unlock()
	return s.memStore.Digest(g)
}

func (s *witStore) Witness(g logmodel.GLSN) (*big.Int, bool) {
	s.cmu.Lock()
	s.witCalls++
	s.cmu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	w, ok := s.witnesses[g]
	return w, ok
}

func (s *witStore) resetCounters() {
	s.cmu.Lock()
	s.fragCalls, s.digCalls, s.witCalls = 0, 0, 0
	s.cmu.Unlock()
}

func (s *witStore) counts() (frag, dig, wit int) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return s.fragCalls, s.digCalls, s.witCalls
}

type witRig struct {
	ring   []string
	params *accumulator.Params
	stores map[string]*witStore
	mbs    map[string]*transport.Mailbox
}

func newWitRig(t *testing.T, n int) *witRig {
	t.Helper()
	base := newRig(t, 0) // network + params only; nodes built below
	w := &witRig{
		params: base.params,
		stores: make(map[string]*witStore),
		mbs:    make(map[string]*transport.Mailbox),
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := "P" + string(rune('0'+i))
		w.ring = append(w.ring, id)
		ep, err := base.net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		w.mbs[id] = transport.NewMailbox(ep)
		w.stores[id] = newWitStore()
	}
	for _, id := range w.ring {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			Serve(ctx, w.mbs[id], w.ring, w.params, w.stores[id]) //nolint:errcheck
		}(id)
	}
	t.Cleanup(func() {
		cancel()
		for _, mb := range w.mbs {
			mb.Close() //nolint:errcheck
		}
		wg.Wait()
	})
	return w
}

// logWitnessRecord installs fragments, digest, and per-node witnesses —
// the post-PR7 client write path in miniature — and zeroes the call
// counters so a test observes only the check it runs.
func (w *witRig) logWitnessRecord(t *testing.T, ex *logmodel.PaperExample, rec logmodel.Record) {
	t.Helper()
	frags := ex.Partition.Split(rec)
	nodes := ex.Partition.Nodes()
	items := make([][]byte, 0, len(nodes))
	for _, node := range nodes {
		items = append(items, frags[node].Canonical())
	}
	digest := w.params.AccumulateAll(items)
	wits := w.params.Witnesses(items)
	for i, node := range nodes {
		s := w.stores[node]
		s.mu.Lock()
		s.frags[rec.GLSN] = frags[node]
		s.digests[rec.GLSN] = digest
		s.mu.Unlock()
		s.cmu.Lock()
		s.witnesses[rec.GLSN] = wits[i]
		s.cmu.Unlock()
	}
	for _, s := range w.stores {
		s.resetCounters()
	}
}

// TestCheckWitnessFastPathSkipsCirculation pins the headline property:
// a clean witness-backed check is one parallel attest round with NO ring
// circulation. Decisively: each responder reads its fragment exactly
// once (the local attest verify); a circulation fold would read it a
// second time.
func TestCheckWitnessFastPathSkipsCirculation(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	w := newWitRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[0]
	w.logWitnessRecord(t, ex, rec)

	if err := Check(ctx, w.mbs["P0"], w.ring, w.params, w.stores["P0"], rec.GLSN); err != nil {
		t.Fatalf("clean witness-backed record flagged: %v", err)
	}
	for _, id := range w.ring[1:] {
		frag, dig, wit := w.stores[id].counts()
		if frag != 1 || dig != 1 || wit != 1 {
			t.Errorf("responder %s: frag=%d dig=%d wit=%d calls, want 1/1/1 (attest only, no circulation)", id, frag, dig, wit)
		}
	}
}

// TestCheckWitnessDetectsTamperedPeer covers cross-node coverage of the
// fast path: a fragment tampered on a NON-initiator node must still be
// flagged when the check runs elsewhere (the peer's own attest fails,
// and the authoritative circulation confirms the corruption).
func TestCheckWitnessDetectsTamperedPeer(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	w := newWitRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[0]
	w.logWitnessRecord(t, ex, rec)

	s := w.stores["P2"]
	s.mu.Lock()
	frag := s.frags[rec.GLSN]
	frag.Values["Tid"] = logmodel.String("T9999999")
	s.frags[rec.GLSN] = frag
	s.mu.Unlock()

	err = Check(ctx, w.mbs["P0"], w.ring, w.params, w.stores["P0"], rec.GLSN)
	if err == nil {
		t.Fatal("tampered peer fragment not detected through witness path")
	}
	if errors.Is(err, ErrNoDigest) || errors.Is(err, ErrFragmentMissing) {
		t.Fatalf("wrong failure class: %v", err)
	}
}

// TestCheckWitnessDetectsLocalTamper: the initiator's own corrupted
// fragment fails its local witness verify before any message is sent,
// and circulation confirms.
func TestCheckWitnessDetectsLocalTamper(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	w := newWitRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[1]
	w.logWitnessRecord(t, ex, rec)

	s := w.stores["P0"]
	s.mu.Lock()
	frag := s.frags[rec.GLSN]
	frag.Values["Uid"] = logmodel.String("intruder")
	s.frags[rec.GLSN] = frag
	s.mu.Unlock()

	if err := Check(ctx, w.mbs["P0"], w.ring, w.params, w.stores["P0"], rec.GLSN); err == nil {
		t.Fatal("tampered local fragment not detected")
	}
}

// TestCheckWitnessFallsBackWithoutPeerWitness: a record whose witness
// is missing on one peer (pre-witness writer, or a replayed legacy WAL)
// still verifies — the attest round comes back non-unanimous and the
// check falls back to circulation.
func TestCheckWitnessFallsBackWithoutPeerWitness(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	w := newWitRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[2]
	w.logWitnessRecord(t, ex, rec)

	s := w.stores["P2"]
	s.cmu.Lock()
	delete(s.witnesses, rec.GLSN)
	s.cmu.Unlock()

	if err := Check(ctx, w.mbs["P0"], w.ring, w.params, w.stores["P0"], rec.GLSN); err != nil {
		t.Fatalf("clean record failed after losing one peer witness: %v", err)
	}
	// The fallback circulated: P1 answered an attest (one fragment read)
	// AND folded the circulation (a second).
	if frag, _, _ := w.stores["P1"].counts(); frag != 2 {
		t.Errorf("responder P1 read its fragment %d times, want 2 (attest + circulation fold)", frag)
	}
}

// TestCheckWitnessMissingPeerFragment: a deleted fragment on a peer
// surfaces as ErrFragmentMissing through fast path plus fallback.
func TestCheckWitnessMissingPeerFragment(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	w := newWitRig(t, 4)
	ctx := testCtx(t)
	rec := ex.Records[3]
	w.logWitnessRecord(t, ex, rec)

	s := w.stores["P3"]
	s.mu.Lock()
	delete(s.frags, rec.GLSN)
	s.mu.Unlock()

	err = Check(ctx, w.mbs["P0"], w.ring, w.params, w.stores["P0"], rec.GLSN)
	if !errors.Is(err, ErrFragmentMissing) {
		t.Fatalf("err = %v, want ErrFragmentMissing", err)
	}
}

// TestCheckAllWitnessSweepNoCirculation: a whole-history sweep over
// witness-backed records never circulates — every responder reads each
// fragment exactly once per record.
func TestCheckAllWitnessSweepNoCirculation(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	w := newWitRig(t, 4)
	ctx := testCtx(t)
	glsns := make([]logmodel.GLSN, 0, len(ex.Records))
	for _, rec := range ex.Records {
		w.logWitnessRecord(t, ex, rec)
		glsns = append(glsns, rec.GLSN)
	}
	rep := CheckAll(ctx, w.mbs["P0"], w.ring, w.params, w.stores["P0"], glsns)
	if !rep.Clean() {
		t.Fatalf("clean sweep reported corrupted=%v errors=%v", rep.Corrupted, rep.Errors)
	}
	for _, id := range w.ring[1:] {
		if frag, _, _ := w.stores[id].counts(); frag != len(glsns) {
			t.Errorf("responder %s read fragments %d times for %d records, want one each", id, frag, len(glsns))
		}
	}
}

func TestCheckLocal(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	w := newWitRig(t, 4)
	rec := ex.Records[0]
	w.logWitnessRecord(t, ex, rec)

	if err := CheckLocal(w.params, w.stores["P1"], rec.GLSN); err != nil {
		t.Fatalf("clean local check failed: %v", err)
	}
	// Tampering flips the verdict with no messages involved.
	s := w.stores["P1"]
	s.mu.Lock()
	frag := s.frags[rec.GLSN]
	frag.Values["Tid"] = logmodel.String("T0000000")
	s.frags[rec.GLSN] = frag
	s.mu.Unlock()
	if err := CheckLocal(w.params, s, rec.GLSN); err == nil {
		t.Fatal("tampered local fragment passed CheckLocal")
	}
	// Witness-less records and plain stores report ErrNoWitness.
	if err := CheckLocal(w.params, s, rec.GLSN+999); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("err = %v, want ErrNoWitness", err)
	}
	if err := CheckLocal(w.params, newMemStore(), rec.GLSN); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("plain store: err = %v, want ErrNoWitness", err)
	}
}
