// Package loadgen is the load-generation engine behind cmd/dlaload: it
// drives a chaos-instrumented DLA cluster with a workload scenario at a
// sweep of offered loads, measures achieved throughput and ack-latency
// percentiles per point, runs the synchronous LogBatch baseline in the
// same process for an honest speedup figure, and — after an optional
// crash/restart cycle — audits every acked glsn against the surviving
// cluster so an acked-but-lost record can never go unnoticed.
package loadgen

import (
	"context"
	"crypto/rand"
	"fmt"
	"sort"
	"sync"
	"time"

	"confaudit/internal/audit"
	"confaudit/internal/chaos"
	"confaudit/internal/cluster"
	"confaudit/internal/logmodel"
	"confaudit/internal/ticket"
	"confaudit/internal/workload"
)

// Config parameterizes one load run.
type Config struct {
	// Scenario shapes the record stream, arrival process, and fault
	// injection (see workload.Scenarios).
	Scenario workload.Scenario
	// Nodes is the roster size (default 4).
	Nodes int
	// Producers is the number of concurrent appender sessions
	// (default 4).
	Producers int
	// Records is the record count per offered-load point (default 2000).
	Records int
	// Rates is the offered-load sweep in records/sec; 0 means unpaced
	// (as fast as backpressure admits). Default: {1000, 4000, 0}.
	Rates []float64
	// Seed makes the run reproducible.
	Seed uint64
	// Admission bounds every node's ingest admission.
	Admission cluster.AdmissionConfig
	// Append tunes the producers' appenders.
	Append cluster.AppendOptions
	// DataRoot enables per-node WAL durability (required for CrashNode).
	DataRoot string
	// CrashNode, when set, crashes that node once the first point is
	// halfway produced and restarts it after CrashPause — the
	// acked-record-loss audit then runs against the recovered cluster.
	CrashNode  string
	CrashPause time.Duration
	// BaselineBatch is the records-per-LogBatch of the synchronous
	// comparison run. The default (1) models the pre-Appender streaming
	// producer: each event is logged as it arrives and acked before the
	// next is offered — a producer without the Appender's staging buffer
	// cannot batch events that have not arrived yet. Raise it to model a
	// producer draining a pre-existing backlog.
	BaselineBatch int
	// SkipBaseline omits the synchronous comparison run.
	SkipBaseline bool
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Producers <= 0 {
		c.Producers = 4
	}
	if c.Records <= 0 {
		c.Records = 2000
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{1000, 4000, 0}
	}
	if c.CrashPause <= 0 {
		c.CrashPause = 300 * time.Millisecond
	}
	if c.BaselineBatch <= 0 {
		c.BaselineBatch = 1
	}
	return c
}

// Point is one offered-load measurement — a knee-of-curve row.
type Point struct {
	// OfferedRPS is the target arrival rate (0 = unpaced).
	OfferedRPS float64 `json:"offered_rps"`
	// AchievedRPS is acked records divided by wall time.
	AchievedRPS float64 `json:"achieved_rps"`
	// Acked and Failed partition the records by ack outcome.
	Acked  int `json:"acked"`
	Failed int `json:"failed"`
	// Latency percentiles over ack round trips, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// ElapsedMs is the point's wall time.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// Report is a full run: the sweep, the baseline, and the loss audit.
type Report struct {
	Scenario  string  `json:"scenario"`
	Nodes     int     `json:"nodes"`
	Producers int     `json:"producers"`
	Records   int     `json:"records"`
	Points    []Point `json:"points"`
	// Baseline is the pre-appender write path measured in the same run:
	// one session calling LogBatch synchronously (BaselineBatch records
	// per round trip, default one — the log-per-event producer).
	Baseline *Point `json:"baseline,omitempty"`
	// Speedup is the best unpaced AchievedRPS over Baseline.AchievedRPS.
	Speedup float64 `json:"speedup,omitempty"`
	// Crashed names the node taken through a crash/restart cycle.
	Crashed string `json:"crashed,omitempty"`
	// LostAcks counts acked glsns missing a fragment on any node after
	// the run — MUST be zero; anything else is an ack-contract breach.
	LostAcks int `json:"lost_acks"`
	// Queries and QueryP95Ms cover the scenario's query fraction.
	Queries    int     `json:"queries,omitempty"`
	QueryP95Ms float64 `json:"query_p95_ms,omitempty"`
}

// Run executes the scenario sweep against a fresh in-process cluster.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	cc, err := chaos.New(rand.Reader, chaos.Options{
		Nodes:     cfg.Nodes,
		Seed:      int64(cfg.Seed),
		Jitter:    cfg.Scenario.Jitter,
		DataRoot:  cfg.DataRoot,
		Admission: cfg.Admission,
	})
	if err != nil {
		return nil, err
	}
	if err := cc.StartAll(); err != nil {
		cc.StopAll()
		return nil, err
	}
	defer cc.StopAll()

	rep := &Report{
		Scenario:  cfg.Scenario.Name,
		Nodes:     cfg.Nodes,
		Producers: cfg.Producers,
		Records:   cfg.Records,
	}
	gen := workload.New(cfg.Seed)
	events := gen.ScenarioEvents(cc.Schema, cfg.Scenario, cfg.Records, 64)

	var acked []logmodel.GLSN
	for i, rate := range cfg.Rates {
		crash := cfg.CrashNode != "" && i == 0
		pt, glsns, err := runPoint(ctx, cc, cfg, events, rate, crash)
		if err != nil {
			return nil, fmt.Errorf("loadgen: point %v rps: %w", rate, err)
		}
		rep.Points = append(rep.Points, *pt)
		acked = append(acked, glsns...)
	}
	if cfg.CrashNode != "" {
		rep.Crashed = cfg.CrashNode
	}

	if !cfg.SkipBaseline {
		bl, glsns, err := runBaseline(ctx, cc, cfg, events)
		if err != nil {
			return nil, fmt.Errorf("loadgen: baseline: %w", err)
		}
		rep.Baseline = bl
		acked = append(acked, glsns...)
		best := 0.0
		for _, p := range rep.Points {
			if p.AchievedRPS > best {
				best = p.AchievedRPS
			}
		}
		if bl.AchievedRPS > 0 {
			rep.Speedup = best / bl.AchievedRPS
		}
	}

	if cfg.Scenario.WriteFrac < 1.0 {
		if err := runQueries(ctx, cc, cfg, rep); err != nil {
			return nil, fmt.Errorf("loadgen: queries: %w", err)
		}
	}

	// The loss audit: every acked glsn must hold a fragment on every
	// node — including the one that crashed and recovered.
	rep.LostAcks = countLostAcks(cc, acked)
	return rep, nil
}

// runPoint produces cfg.Records through cfg.Producers appenders at the
// offered rate, returning the measurement and every acked glsn.
func runPoint(ctx context.Context, cc *chaos.Cluster, cfg Config, events []map[logmodel.Attr]logmodel.Value, rate float64, crash bool) (*Point, []logmodel.GLSN, error) {
	type timedAck struct {
		ack *cluster.Ack
		t0  time.Time
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		latency  []float64
		glsns    []logmodel.GLSN
		failed   int
		firstErr error
	)
	perProducer := (len(events) + cfg.Producers - 1) / cfg.Producers
	perRate := rate / float64(cfg.Producers)
	start := time.Now()
	for p := 0; p < cfg.Producers; p++ {
		lo := p * perProducer
		hi := min(lo+perProducer, len(events))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(p int, recs []map[logmodel.Attr]logmodel.Value) {
			defer wg.Done()
			id := fmt.Sprintf("load-p%d-%d", p, time.Now().UnixNano())
			cl, mb, err := cc.NewClient(ctx, id, "T-"+id, ticket.OpWrite, ticket.OpRead)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				failed += len(recs)
				mu.Unlock()
				return
			}
			defer mb.Close() //nolint:errcheck
			if err := cl.RegisterTicket(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				failed += len(recs)
				mu.Unlock()
				return
			}
			ap, err := cl.NewAppender(ctx, cfg.Append)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				failed += len(recs)
				mu.Unlock()
				return
			}
			// The consumer resolves acks in append order a bounded
			// window behind the producer, stamping latencies.
			pending := make(chan timedAck, 8192)
			var consumer sync.WaitGroup
			consumer.Add(1)
			go func() {
				defer consumer.Done()
				lat := make([]float64, 0, len(recs))
				var got []logmodel.GLSN
				nfail := 0
				for ta := range pending {
					g, err := ta.ack.GLSN()
					if err != nil {
						nfail++
						continue
					}
					lat = append(lat, float64(time.Since(ta.t0).Microseconds())/1000.0)
					got = append(got, g)
				}
				mu.Lock()
				latency = append(latency, lat...)
				glsns = append(glsns, got...)
				failed += nfail
				mu.Unlock()
			}()
			interval := time.Duration(0)
			if perRate > 0 {
				interval = time.Duration(float64(time.Second) / perRate)
			}
			next := time.Now()
			for i, rec := range recs {
				if interval > 0 {
					// Paced arrivals; bursty scenarios bunch the pacing
					// budget into on/off cycles.
					if cfg.Scenario.BurstLen > 0 {
						if i%cfg.Scenario.BurstLen == 0 && i > 0 {
							idle := time.Duration(float64(cfg.Scenario.BurstLen) * float64(interval) * cfg.Scenario.IdleFrac)
							time.Sleep(idle)
							next = time.Now()
						}
					} else {
						if d := time.Until(next); d > 0 {
							time.Sleep(d)
						}
						next = next.Add(interval)
					}
				}
				t0 := time.Now()
				ack, err := ap.Append(ctx, rec)
				if err != nil {
					mu.Lock()
					failed++
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				pending <- timedAck{ack: ack, t0: t0}
			}
			if err := ap.Close(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			close(pending)
			consumer.Wait()
		}(p, events[lo:hi])
	}
	if crash {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Take the node down mid-stream and bring it back; producer
			// retries ride out the gap and the WAL replays on restart.
			time.Sleep(cfg.CrashPause)
			if err := cc.Crash(cfg.CrashNode); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			time.Sleep(cfg.CrashPause)
			if err := cc.Restart(cfg.CrashNode); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil && len(glsns) == 0 {
		return nil, nil, firstErr
	}
	pt := &Point{
		OfferedRPS: rate,
		Acked:      len(glsns),
		Failed:     failed,
		ElapsedMs:  float64(elapsed.Microseconds()) / 1000.0,
	}
	if elapsed > 0 {
		pt.AchievedRPS = float64(len(glsns)) / elapsed.Seconds()
	}
	pt.P50Ms, pt.P95Ms, pt.P99Ms, pt.MaxMs = percentiles(latency)
	return pt, glsns, nil
}

// runBaseline measures the synchronous path: one client, LogBatch
// round trips back to back over the same records.
func runBaseline(ctx context.Context, cc *chaos.Cluster, cfg Config, events []map[logmodel.Attr]logmodel.Value) (*Point, []logmodel.GLSN, error) {
	id := fmt.Sprintf("load-base-%d", time.Now().UnixNano())
	cl, mb, err := cc.NewClient(ctx, id, "T-"+id, ticket.OpWrite, ticket.OpRead)
	if err != nil {
		return nil, nil, err
	}
	defer mb.Close() //nolint:errcheck
	if err := cl.RegisterTicket(ctx); err != nil {
		return nil, nil, err
	}
	batch := cfg.BaselineBatch
	var (
		glsns   []logmodel.GLSN
		latency []float64
	)
	start := time.Now()
	for lo := 0; lo < len(events); lo += batch {
		hi := min(lo+batch, len(events))
		t0 := time.Now()
		gs, err := cl.LogBatch(ctx, events[lo:hi])
		if err != nil {
			return nil, nil, err
		}
		lat := float64(time.Since(t0).Microseconds()) / 1000.0
		for range gs {
			latency = append(latency, lat)
		}
		glsns = append(glsns, gs...)
	}
	elapsed := time.Since(start)
	pt := &Point{
		Acked:     len(glsns),
		ElapsedMs: float64(elapsed.Microseconds()) / 1000.0,
	}
	if elapsed > 0 {
		pt.AchievedRPS = float64(len(glsns)) / elapsed.Seconds()
	}
	pt.P50Ms, pt.P95Ms, pt.P99Ms, pt.MaxMs = percentiles(latency)
	return pt, glsns, nil
}

// runQueries drives the scenario's query fraction through an auditor
// session against the freshly written data.
func runQueries(ctx context.Context, cc *chaos.Cluster, cfg Config, rep *Report) error {
	id := fmt.Sprintf("load-q-%d", time.Now().UnixNano())
	cl, mb, err := cc.NewClient(ctx, id, "T-"+id, ticket.OpRead, ticket.OpWrite)
	if err != nil {
		return err
	}
	defer mb.Close() //nolint:errcheck
	if err := cl.RegisterTicket(ctx); err != nil {
		return err
	}
	aud := audit.NewAuditor(mb, cc.Boot.Roster[0], "T-"+id)
	writes := float64(cfg.Records)
	queries := int(writes*(1-cfg.Scenario.WriteFrac)) / 10
	if queries < 1 {
		queries = 1
	}
	mix := workload.QueryMix(2)
	var lat []float64
	for i := 0; i < queries; i++ {
		t0 := time.Now()
		if _, err := aud.Query(ctx, mix[i%len(mix)]); err != nil {
			return err
		}
		lat = append(lat, float64(time.Since(t0).Microseconds())/1000.0)
	}
	rep.Queries = queries
	_, rep.QueryP95Ms, _, _ = percentiles(lat)
	return nil
}

// countLostAcks sweeps every node for every acked glsn; a missing
// fragment anywhere counts as a lost ack.
func countLostAcks(cc *chaos.Cluster, acked []logmodel.GLSN) int {
	lost := 0
	for _, g := range acked {
		for _, id := range cc.Boot.Roster {
			n := cc.Node(id)
			if n == nil {
				lost++
				break
			}
			if _, ok := n.Fragment(g); !ok {
				lost++
				break
			}
		}
	}
	return lost
}

// percentiles returns p50/p95/p99/max over ms samples (zeros if empty).
func percentiles(ms []float64) (p50, p95, p99, max float64) {
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	return at(0.50), at(0.95), at(0.99), ms[len(ms)-1]
}
