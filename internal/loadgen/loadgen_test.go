package loadgen

import (
	"context"
	"testing"
	"time"

	"confaudit/internal/cluster"
	"confaudit/internal/workload"
)

// TestLoadSmoke is the `make load-smoke` gate: the burst scenario on a
// memnet cluster must ack every record, lose none, and produce a
// non-empty knee row.
func TestLoadSmoke(t *testing.T) {
	sc, err := workload.ScenarioByName("burst")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := Run(ctx, Config{
		Scenario:  sc,
		Nodes:     3,
		Producers: 2,
		Records:   600,
		Rates:     []float64{500, 0},
		Seed:      42,
		Append:    cluster.AppendOptions{MaxBatchRecords: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("want 2 knee rows, got %d", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Acked != 600 || p.Failed != 0 {
			t.Fatalf("point %+v: want 600 acked, 0 failed", p)
		}
		if p.AchievedRPS <= 0 || p.MaxMs <= 0 {
			t.Fatalf("point %+v: empty knee row", p)
		}
	}
	if rep.Baseline == nil || rep.Baseline.Acked != 600 {
		t.Fatalf("baseline missing or short: %+v", rep.Baseline)
	}
	if rep.LostAcks != 0 {
		t.Fatalf("%d acked records lost", rep.LostAcks)
	}
}

// TestLoadCrashNoLostAcks is the ack-contract test under failure: a
// durable node is crashed and restarted mid-stream, producers ride out
// the gap through retries, and the post-run audit must find every acked
// glsn on every node — zero acked-record loss.
func TestLoadCrashNoLostAcks(t *testing.T) {
	sc, err := workload.ScenarioByName("burst")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rep, err := Run(ctx, Config{
		Scenario:     sc,
		Nodes:        3,
		Producers:    2,
		Records:      800,
		Rates:        []float64{0},
		Seed:         7,
		Append:       cluster.AppendOptions{MaxBatchRecords: 64},
		DataRoot:     t.TempDir(),
		CrashNode:    "P1",
		CrashPause:   100 * time.Millisecond,
		SkipBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed != "P1" {
		t.Fatalf("crash cycle did not run: %+v", rep)
	}
	pt := rep.Points[0]
	if pt.Acked == 0 {
		t.Fatalf("nothing acked across the crash: %+v", pt)
	}
	if rep.LostAcks != 0 {
		t.Fatalf("%d acked records missing after recovery (acked %d, failed %d)",
			rep.LostAcks, pt.Acked, pt.Failed)
	}
	t.Logf("crash run: %d acked, %d failed, 0 lost", pt.Acked, pt.Failed)
}

// BenchmarkIngestPoint drives one unpaced point — the profiling hook
// for the streaming path.
func BenchmarkIngestPoint(b *testing.B) {
	sc, _ := workload.ScenarioByName("burst")
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	for i := 0; i < b.N; i++ {
		rep, err := Run(ctx, Config{
			Scenario: sc, Nodes: 3, Producers: 2, Records: 4000, Rates: []float64{0},
			Append: cluster.AppendOptions{MaxBatchRecords: 256}, SkipBaseline: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.Points[0].AchievedRPS, "records/sec")
	}
}
