package logmodel

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGLSNString(t *testing.T) {
	g := GLSN(0x139aef78)
	if g.String() != "139aef78" {
		t.Fatalf("String = %q, want 139aef78", g.String())
	}
	back, err := ParseGLSN("139aef78")
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Fatalf("ParseGLSN round trip = %v", back)
	}
	if _, err := ParseGLSN("not hex!"); err == nil {
		t.Fatal("ParseGLSN accepted garbage")
	}
}

func TestValueRender(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("UDP"), "UDP"},
		{Int(-42), "-42"},
		{Float(23.45), "23.45"},
		{Value{}, "<invalid>"},
	}
	for _, tc := range cases {
		if got := tc.v.Render(); got != tc.want {
			t.Errorf("Render(%+v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name    string
		a, b    Value
		want    int
		wantErr bool
	}{
		{"string lt", String("a"), String("b"), -1, false},
		{"string eq", String("x"), String("x"), 0, false},
		{"string gt", String("z"), String("y"), 1, false},
		{"int lt", Int(1), Int(2), -1, false},
		{"int float cross eq", Int(18), Float(18.0), 0, false},
		{"float gt int", Float(2.5), Int(2), 1, false},
		{"string vs int", String("1"), Int(1), 0, true},
		{"invalid kind", Value{}, Int(1), 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Compare(tc.a, tc.b)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Compare = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(18).Equal(Float(18)) {
		t.Fatal("18 should equal 18.0")
	}
	if String("a").Equal(Int(1)) {
		t.Fatal("string should not equal int")
	}
}

func TestRecordCanonicalStable(t *testing.T) {
	r1 := Record{GLSN: 7, Values: map[Attr]Value{"b": Int(2), "a": Int(1)}}
	r2 := Record{GLSN: 7, Values: map[Attr]Value{"a": Int(1), "b": Int(2)}}
	if !bytes.Equal(r1.Canonical(), r2.Canonical()) {
		t.Fatal("Canonical depends on map iteration order")
	}
	r3 := Record{GLSN: 7, Values: map[Attr]Value{"a": Int(1), "b": Int(3)}}
	if bytes.Equal(r1.Canonical(), r3.Canonical()) {
		t.Fatal("different records share a canonical encoding")
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{GLSN: 1, Values: map[Attr]Value{"a": Int(1)}}
	c := r.Clone()
	c.Values["a"] = Int(99)
	if r.Values["a"].I != 1 {
		t.Fatal("Clone aliases the value map")
	}
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema([]Attr{"a", "a"}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := NewSchema([]Attr{"a"}, "missing"); err == nil {
		t.Fatal("undefined attr outside schema accepted")
	}
	s, err := NewSchema([]Attr{"a", "C1"}, "C1")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has("a") || s.Has("zz") {
		t.Fatal("Has misreports membership")
	}
	if s.UndefinedCount() != 1 {
		t.Fatalf("UndefinedCount = %d, want 1", s.UndefinedCount())
	}
}

func TestNewPartitionValidation(t *testing.T) {
	schema, err := NewSchema([]Attr{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		nodes []string
		sets  map[string][]Attr
	}{
		{"missing cover", []string{"P0"}, map[string][]Attr{"P0": {"a", "b"}}},
		{"overlap", []string{"P0", "P1"}, map[string][]Attr{"P0": {"a", "b"}, "P1": {"b", "c"}}},
		{"alien attr", []string{"P0", "P1"}, map[string][]Attr{"P0": {"a", "b"}, "P1": {"c", "z"}}},
		{"unlisted node", []string{"P0", "P1"}, map[string][]Attr{"P0": {"a", "b", "c"}, "PX": {}}},
		{"count mismatch", []string{"P0"}, map[string][]Attr{"P0": {"a", "b", "c"}, "P1": {}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPartition(schema, tc.nodes, tc.sets); err == nil {
				t.Fatal("invalid partition accepted")
			}
		})
	}
	if _, err := NewPartition(nil, nil, nil); err == nil {
		t.Fatal("nil schema accepted")
	}
}

func TestSplitReassembleRoundTrip(t *testing.T) {
	ex, err := NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range ex.Records {
		frags := ex.Partition.Split(rec)
		if len(frags) != 4 {
			t.Fatalf("Split produced %d fragments, want 4", len(frags))
		}
		list := make([]Fragment, 0, len(frags))
		for _, f := range frags {
			list = append(list, f)
		}
		back, err := Reassemble(list)
		if err != nil {
			t.Fatal(err)
		}
		if back.GLSN != rec.GLSN {
			t.Fatalf("glsn %v != %v", back.GLSN, rec.GLSN)
		}
		if len(back.Values) != len(rec.Values) {
			t.Fatalf("reassembled %d attrs, want %d", len(back.Values), len(rec.Values))
		}
		for a, v := range rec.Values {
			if !back.Values[a].Equal(v) {
				t.Fatalf("attribute %q = %v, want %v", a, back.Values[a], v)
			}
		}
	}
}

// TestNoFragmentHoldsFullRecord is the paper's core storage property:
// no single DLA node sees the whole record.
func TestNoFragmentHoldsFullRecord(t *testing.T) {
	ex, err := NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range ex.Records {
		for node, f := range ex.Partition.Split(rec) {
			if len(f.Values) >= len(rec.Values) {
				t.Fatalf("node %s fragment holds %d of %d attributes", node, len(f.Values), len(rec.Values))
			}
		}
	}
}

func TestPaperExampleMatchesTables(t *testing.T) {
	ex, err := NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(ex.Records))
	}
	// Table 2 (P0): glsn + time.
	f := ex.Partition.Split(ex.Records[0])["P0"]
	if f.GLSN.String() != "139aef78" {
		t.Fatalf("P0 fragment glsn %s", f.GLSN)
	}
	if got := f.Values["time"].Render(); got != "20:18:35/05/12/2002" {
		t.Fatalf("P0 time = %q", got)
	}
	if _, leak := f.Values["id"]; leak {
		t.Fatal("P0 fragment leaked the id attribute")
	}
	// Table 3 (P1): id and C2.
	f = ex.Partition.Split(ex.Records[4])["P1"]
	if got := f.Values["id"].Render(); got != "U3" {
		t.Fatalf("P1 id = %q, want U3", got)
	}
	if got := f.Values["C2"].Render(); got != "678.75" {
		t.Fatalf("P1 C2 = %q, want 678.75", got)
	}
	// Table 4 (P2): Tid and C3.
	f = ex.Partition.Split(ex.Records[3])["P2"]
	if got := f.Values["Tid"].Render(); got != "T1100265" {
		t.Fatalf("P2 Tid = %q", got)
	}
	if got := f.Values["C3"].Render(); got != "salary" {
		t.Fatalf("P2 C3 = %q", got)
	}
	// Table 5 (P3): protocl and C1.
	f = ex.Partition.Split(ex.Records[2])["P3"]
	if got := f.Values["protocl"].Render(); got != "UDP" {
		t.Fatalf("P3 protocl = %q", got)
	}
	if got := f.Values["C1"].Render(); got != "45" {
		t.Fatalf("P3 C1 = %q", got)
	}
	// Table 6 grants.
	if got := ex.TicketGrants["T1"]; len(got) != 2 || got[0].String() != "139aef78" || got[1].String() != "139aef80" {
		t.Fatalf("T1 grants = %v", got)
	}
}

func TestCoverCount(t *testing.T) {
	ex, err := NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	// The example records populate attributes owned by all 4 nodes.
	if u := ex.Partition.CoverCount(ex.Records[0]); u != 4 {
		t.Fatalf("CoverCount = %d, want 4", u)
	}
	// A record touching only P0+P1 attributes needs 2 nodes.
	r := Record{GLSN: 1, Values: map[Attr]Value{"time": String("t"), "id": String("U1")}}
	if u := ex.Partition.CoverCount(r); u != 2 {
		t.Fatalf("CoverCount = %d, want 2", u)
	}
}

func TestReassembleErrors(t *testing.T) {
	if _, err := Reassemble(nil); err == nil {
		t.Fatal("empty fragment list accepted")
	}
	mismatch := []Fragment{
		{GLSN: 1, Values: map[Attr]Value{"a": Int(1)}},
		{GLSN: 2, Values: map[Attr]Value{"b": Int(2)}},
	}
	if _, err := Reassemble(mismatch); err == nil {
		t.Fatal("mismatched glsns accepted")
	}
	conflict := []Fragment{
		{GLSN: 1, Values: map[Attr]Value{"a": Int(1)}},
		{GLSN: 1, Values: map[Attr]Value{"a": Int(2)}},
	}
	if _, err := Reassemble(conflict); err == nil {
		t.Fatal("conflicting duplicate attribute accepted")
	}
}

func TestPartitionAccessors(t *testing.T) {
	ex, err := NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	nodes := ex.Partition.Nodes()
	if len(nodes) != 4 || nodes[0] != "P0" || nodes[3] != "P3" {
		t.Fatalf("Nodes = %v", nodes)
	}
	nodes[0] = "mutated"
	if ex.Partition.Nodes()[0] != "P0" {
		t.Fatal("Nodes exposes internal slice")
	}
	attrs := ex.Partition.NodeAttrs("P1")
	if len(attrs) != 4 {
		t.Fatalf("P1 attrs = %v", attrs)
	}
	if ex.Partition.Owner("Tid") != "P2" {
		t.Fatalf("Owner(Tid) = %q", ex.Partition.Owner("Tid"))
	}
	if ex.Partition.Owner("nope") != "" {
		t.Fatal("Owner of unknown attribute should be empty")
	}
}

// TestSplitReassembleQuick property-tests lossless fragmentation on
// random records over the paper schema.
func TestSplitReassembleQuick(t *testing.T) {
	ex, err := NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	f := func(glsn uint64, timeS, id string, c1 int64, c2 float64) bool {
		rec := Record{
			GLSN: GLSN(glsn),
			Values: map[Attr]Value{
				"time": String(timeS),
				"id":   String(id),
				"C1":   Int(c1),
				"C2":   Float(c2),
			},
		}
		frags := ex.Partition.Split(rec)
		list := make([]Fragment, 0, len(frags))
		for _, fr := range frags {
			list = append(list, fr)
		}
		back, err := Reassemble(list)
		if err != nil {
			return false
		}
		if back.GLSN != rec.GLSN || len(back.Values) != len(rec.Values) {
			return false
		}
		for a, v := range rec.Values {
			if !back.Values[a].Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSplit(b *testing.B) {
	ex, err := NewPaperExample()
	if err != nil {
		b.Fatal(err)
	}
	rec := ex.Records[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Partition.Split(rec)
	}
}

func BenchmarkCanonical(b *testing.B) {
	ex, err := NewPaperExample()
	if err != nil {
		b.Fatal(err)
	}
	rec := ex.Records[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Canonical()
	}
}
