package logmodel

// This file reproduces the paper's worked example exactly: the global
// event log of Table 1, the attribute partition behind the fragment
// Tables 2-5, and the access-control grants of Table 6. It is used by
// cmd/benchtab to regenerate those tables and by tests as a known-good
// fixture.

// PaperExample bundles the fixture.
type PaperExample struct {
	Schema    *Schema
	Partition *Partition
	Records   []Record
	// TicketGrants maps ticket ID to the glsns it authorizes (Table 6).
	TicketGrants map[string][]GLSN
}

// Paper table column sets. P0-P3 support attributes beyond those the
// example records populate (EID, ip, C4, C5, C6), exactly as the paper's
// fragment tables show empty columns.
var (
	paperNodes = []string{"P0", "P1", "P2", "P3"}

	paperNodeAttrs = map[string][]Attr{
		"P0": {"time", "C4"},
		"P1": {"id", "EID", "C2", "C5"},
		"P2": {"Tid", "C3", "C6"},
		"P3": {"protocl", "ip", "C1"},
	}
)

// NewPaperExample constructs the fixture. It never fails on the
// embedded data; errors would indicate a programming mistake and are
// surfaced for the caller to treat as fatal.
func NewPaperExample() (*PaperExample, error) {
	schema, err := NewSchema(
		[]Attr{"time", "id", "protocl", "Tid", "C1", "C2", "C3", "EID", "ip", "C4", "C5", "C6"},
		"C1", "C2", "C3", "C4", "C5", "C6",
	)
	if err != nil {
		return nil, err
	}
	part, err := NewPartition(schema, paperNodes, paperNodeAttrs)
	if err != nil {
		return nil, err
	}
	row := func(glsn uint64, ts, id, proto, tid string, c1 int64, c2 float64, c3 string) Record {
		return Record{
			GLSN: GLSN(glsn),
			Values: map[Attr]Value{
				"time":    String(ts),
				"id":      String(id),
				"protocl": String(proto),
				"Tid":     String(tid),
				"C1":      Int(c1),
				"C2":      Float(c2),
				"C3":      String(c3),
			},
		}
	}
	records := []Record{
		row(0x139aef78, "20:18:35/05/12/2002", "U1", "UDP", "T1100265", 20, 23.45, "signature"),
		row(0x139aef79, "20:20:35/05/12/2002", "U2", "UDP", "T1100265", 34, 345.11, "evidence."),
		row(0x139aef80, "20:23:35/05/12/2002", "U1", "UDP", "T1100267", 45, 235.00, "bank"),
		row(0x139aef81, "20:23:38/05/12/2002", "U2", "TCP", "T1100265", 18, 45.02, "salary"),
		row(0x139aef82, "20:25:35/05/12/2002", "U3", "TCP", "T1100267", 53, 678.75, "account"),
	}
	grants := map[string][]GLSN{
		"T1": {0x139aef78, 0x139aef80},
		"T2": {0x139aef79, 0x139aef81},
		"T3": {0x139aef82},
	}
	return &PaperExample{
		Schema:       schema,
		Partition:    part,
		Records:      records,
		TicketGrants: grants,
	}, nil
}
