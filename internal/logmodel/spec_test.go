package logmodel

import (
	"encoding/json"
	"testing"
)

func TestPartitionSpecRoundTrip(t *testing.T) {
	ex, err := NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	spec := ex.Partition.Spec()
	// Through JSON, as provisioning does.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back PartitionSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	part, err := FromSpec(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Nodes()) != 4 {
		t.Fatalf("nodes = %v", part.Nodes())
	}
	for _, a := range ex.Schema.Attrs {
		if part.Owner(a) != ex.Partition.Owner(a) {
			t.Fatalf("owner of %q changed: %q vs %q", a, part.Owner(a), ex.Partition.Owner(a))
		}
	}
	if part.Schema().UndefinedCount() != ex.Schema.UndefinedCount() {
		t.Fatal("undefined attributes lost")
	}
	// Fragmentation behaves identically.
	rec := ex.Records[0]
	f1 := ex.Partition.Split(rec)
	f2 := part.Split(rec)
	for node := range f1 {
		if string(f1[node].Canonical()) != string(f2[node].Canonical()) {
			t.Fatalf("fragments differ on %s after spec round trip", node)
		}
	}
}

func TestFromSpecValidates(t *testing.T) {
	bad := PartitionSpec{
		Attrs:     []Attr{"a", "b"},
		Nodes:     []string{"P0"},
		NodeAttrs: map[string][]Attr{"P0": {"a"}}, // b uncovered
	}
	if _, err := FromSpec(bad); err == nil {
		t.Fatal("uncovering spec accepted")
	}
	dup := PartitionSpec{
		Attrs:     []Attr{"a", "a"},
		Nodes:     []string{"P0"},
		NodeAttrs: map[string][]Attr{"P0": {"a"}},
	}
	if _, err := FromSpec(dup); err == nil {
		t.Fatal("duplicate-attr spec accepted")
	}
}
