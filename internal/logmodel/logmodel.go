// Package logmodel defines the DLA data model of paper §2:
//
//   - audit records Log = {glsn, L=(l0..lm)} (eq. 5) with a global log
//     sequence number and typed attribute values;
//   - attribute schemas I = {i0..im} including the "undefined"
//     attributes C1..Cn that are meaningful only to the application
//     subsystem (§5);
//   - vertical fragmentation of records across DLA nodes (Tables 2-5):
//     each node P_i supports an attribute set A_i with ∪A_i = I and
//     A_i ∩ A_j = ∅, and stores the projection of every record onto
//     A_i (plus glsn);
//   - transactions T = {R_T, E_T, L_T, tsn, ttn} (eq. 1).
package logmodel

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// GLSN is the global log sequence number, "a monotonically increasing
// integer that uniquely defines a log record" (paper eq. 5). The paper
// renders them in hex (139aef78, ...); String follows suit.
type GLSN uint64

// String renders the GLSN the way the paper's tables do.
func (g GLSN) String() string { return strconv.FormatUint(uint64(g), 16) }

// ParseGLSN parses the hex rendering back into a GLSN.
func ParseGLSN(s string) (GLSN, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("logmodel: parsing glsn %q: %w", s, err)
	}
	return GLSN(v), nil
}

// Attr names an audit-trail attribute (time, id, Tid, C1, ...).
type Attr string

// Kind discriminates attribute value types.
type Kind int

// Value kinds. Start at one so the zero Kind is invalid (catching
// uninitialized values early).
const (
	KindString Kind = iota + 1
	KindInt
	KindFloat
)

// Value is a typed attribute value.
type Value struct {
	Kind Kind    `json:"k"`
	S    string  `json:"s,omitempty"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
}

// String builds a string value.
func String(s string) Value { return Value{Kind: KindString, S: s} }

// Int builds an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float builds a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Errors reported by the package.
var (
	// ErrIncomparable indicates values whose kinds cannot be ordered.
	ErrIncomparable = errors.New("logmodel: incomparable value kinds")
	// ErrBadPartition indicates an attribute partition that is not a
	// disjoint cover of the schema.
	ErrBadPartition = errors.New("logmodel: invalid attribute partition")
	// ErrFragmentMismatch indicates fragments that cannot be reassembled.
	ErrFragmentMismatch = errors.New("logmodel: fragment mismatch")
)

// Render formats the value for table output and canonical encoding.
func (v Value) Render() string {
	switch v.Kind {
	case KindString:
		return v.S
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'f', -1, 64)
	default:
		return "<invalid>"
	}
}

// Equal reports deep equality of two values. Numeric values of
// different kinds are compared numerically, matching predicate
// semantics (18 == 18.0).
func (v Value) Equal(o Value) bool {
	c, err := Compare(v, o)
	return err == nil && c == 0
}

// Compare orders two values: -1, 0, +1. Strings order lexically; ints
// and floats order numerically and interoperate. Comparing a string
// against a number is an ErrIncomparable.
func Compare(a, b Value) (int, error) {
	if a.Kind == KindString || b.Kind == KindString {
		if a.Kind != KindString || b.Kind != KindString {
			return 0, fmt.Errorf("%w: %v vs %v", ErrIncomparable, a.Kind, b.Kind)
		}
		return strings.Compare(a.S, b.S), nil
	}
	af, err := a.asFloat()
	if err != nil {
		return 0, err
	}
	bf, err := b.asFloat()
	if err != nil {
		return 0, err
	}
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

func (v Value) asFloat() (float64, error) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("%w: kind %v is not numeric", ErrIncomparable, v.Kind)
	}
}

// Record is one audit log record (paper eq. 5).
type Record struct {
	GLSN   GLSN           `json:"glsn"`
	Values map[Attr]Value `json:"values"`
}

// Clone deep-copies the record.
func (r Record) Clone() Record {
	vals := make(map[Attr]Value, len(r.Values))
	for k, v := range r.Values {
		vals[k] = v
	}
	return Record{GLSN: r.GLSN, Values: vals}
}

// Attrs returns the record's attribute names in sorted order.
func (r Record) Attrs() []Attr {
	attrs := make([]Attr, 0, len(r.Values))
	for a := range r.Values {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	return attrs
}

// Canonical returns a deterministic byte encoding of the record:
// glsn|attr=value|... with attributes sorted. This is the input to the
// one-way accumulator, so it must be stable across nodes and runs.
func (r Record) Canonical() []byte {
	var sb strings.Builder
	sb.WriteString(r.GLSN.String())
	for _, a := range r.Attrs() {
		sb.WriteByte('|')
		sb.WriteString(string(a))
		sb.WriteByte('=')
		sb.WriteString(r.Values[a].Render())
	}
	return []byte(sb.String())
}

// Schema is the full attribute universe I, with the subset of
// "undefined" attributes (C1, C2, ...) that carry only
// application-private meaning (paper §5).
type Schema struct {
	// Attrs lists every attribute in I, in table column order.
	Attrs []Attr
	// Undefined marks the abstract attributes.
	Undefined map[Attr]bool
}

// NewSchema builds a schema; undefined attributes must be a subset of
// attrs.
func NewSchema(attrs []Attr, undefined ...Attr) (*Schema, error) {
	seen := make(map[Attr]struct{}, len(attrs))
	for _, a := range attrs {
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("logmodel: duplicate attribute %q in schema", a)
		}
		seen[a] = struct{}{}
	}
	und := make(map[Attr]bool, len(undefined))
	for _, u := range undefined {
		if _, ok := seen[u]; !ok {
			return nil, fmt.Errorf("logmodel: undefined attribute %q not in schema", u)
		}
		und[u] = true
	}
	return &Schema{Attrs: append([]Attr(nil), attrs...), Undefined: und}, nil
}

// Has reports whether the schema contains the attribute.
func (s *Schema) Has(a Attr) bool {
	for _, x := range s.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// UndefinedCount returns |{C_i}|, used by the confidentiality metrics.
func (s *Schema) UndefinedCount() int { return len(s.Undefined) }

// Fragment is the projection of a record onto one DLA node's attribute
// set (paper Tables 2-5). Every fragment carries the glsn key.
type Fragment struct {
	GLSN   GLSN           `json:"glsn"`
	Node   string         `json:"node"`
	Values map[Attr]Value `json:"values"`
}

// Canonical returns the deterministic byte encoding used for integrity
// accumulation of a single fragment.
func (f Fragment) Canonical() []byte {
	var sb strings.Builder
	sb.WriteString(f.GLSN.String())
	attrs := make([]Attr, 0, len(f.Values))
	for a := range f.Values {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	for _, a := range attrs {
		sb.WriteByte('|')
		sb.WriteString(string(a))
		sb.WriteByte('=')
		sb.WriteString(f.Values[a].Render())
	}
	return []byte(sb.String())
}

// Partition assigns each attribute of a schema to exactly one DLA node:
// the A_i sets of paper §4 with ∪A_i = I and A_i ∩ A_j = ∅.
type Partition struct {
	schema *Schema
	// nodeAttrs maps node ID to its supported attribute set, in order.
	nodeAttrs map[string][]Attr
	// owner maps attribute to the node holding it.
	owner map[Attr]string
	// nodes lists node IDs in declaration order.
	nodes []string
}

// NewPartition validates that nodeAttrs is a disjoint cover of the
// schema and builds the partition. Node order follows the nodes slice.
func NewPartition(schema *Schema, nodes []string, nodeAttrs map[string][]Attr) (*Partition, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrBadPartition)
	}
	owner := make(map[Attr]string, len(schema.Attrs))
	attrsCopy := make(map[string][]Attr, len(nodeAttrs))
	if len(nodes) != len(nodeAttrs) {
		return nil, fmt.Errorf("%w: %d node IDs but %d attribute sets", ErrBadPartition, len(nodes), len(nodeAttrs))
	}
	for _, node := range nodes {
		attrs, ok := nodeAttrs[node]
		if !ok {
			return nil, fmt.Errorf("%w: node %q has no attribute set", ErrBadPartition, node)
		}
		for _, a := range attrs {
			if !schema.Has(a) {
				return nil, fmt.Errorf("%w: node %q claims attribute %q outside the schema", ErrBadPartition, node, a)
			}
			if prev, dup := owner[a]; dup {
				return nil, fmt.Errorf("%w: attribute %q claimed by both %q and %q", ErrBadPartition, a, prev, node)
			}
			owner[a] = node
		}
		attrsCopy[node] = append([]Attr(nil), attrs...)
	}
	for _, a := range schema.Attrs {
		if _, ok := owner[a]; !ok {
			return nil, fmt.Errorf("%w: attribute %q not covered by any node", ErrBadPartition, a)
		}
	}
	return &Partition{
		schema:    schema,
		nodeAttrs: attrsCopy,
		owner:     owner,
		nodes:     append([]string(nil), nodes...),
	}, nil
}

// Schema returns the partitioned schema.
func (p *Partition) Schema() *Schema { return p.schema }

// Nodes returns the node IDs in declaration order. The slice is a copy.
func (p *Partition) Nodes() []string { return append([]string(nil), p.nodes...) }

// NodeAttrs returns the attribute set A_i of the node. The slice is a
// copy; unknown nodes yield nil.
func (p *Partition) NodeAttrs(node string) []Attr {
	return append([]Attr(nil), p.nodeAttrs[node]...)
}

// Owner returns the node holding the attribute, or "" if none.
func (p *Partition) Owner(a Attr) string { return p.owner[a] }

// CoverCount returns the minimum number of DLA nodes whose attribute
// sets cover all attributes present in the record — the u of the
// C_store metric (paper eq. 10). With a disjoint partition this is
// exactly the number of distinct owners of the record's attributes.
func (p *Partition) CoverCount(r Record) int {
	owners := make(map[string]struct{}, len(p.nodes))
	for a := range r.Values {
		if node, ok := p.owner[a]; ok {
			owners[node] = struct{}{}
		}
	}
	return len(owners)
}

// Split projects a record into one fragment per node, keyed by glsn
// (Tables 2-5). Nodes whose attribute set does not intersect the record
// still receive an (empty) fragment so the glsn is globally locatable,
// matching the paper's tables where every node lists every glsn.
func (p *Partition) Split(r Record) map[string]Fragment {
	frags := make(map[string]Fragment, len(p.nodes))
	for _, node := range p.nodes {
		vals := make(map[Attr]Value)
		for _, a := range p.nodeAttrs[node] {
			if v, ok := r.Values[a]; ok {
				vals[a] = v
			}
		}
		frags[node] = Fragment{GLSN: r.GLSN, Node: node, Values: vals}
	}
	return frags
}

// Reassemble merges fragments of one record back into the full record,
// verifying the ∪L_i = L property. All fragments must share the glsn.
func Reassemble(frags []Fragment) (Record, error) {
	if len(frags) == 0 {
		return Record{}, fmt.Errorf("%w: no fragments", ErrFragmentMismatch)
	}
	rec := Record{GLSN: frags[0].GLSN, Values: make(map[Attr]Value)}
	for _, f := range frags {
		if f.GLSN != rec.GLSN {
			return Record{}, fmt.Errorf("%w: glsn %s vs %s", ErrFragmentMismatch, f.GLSN, rec.GLSN)
		}
		for a, v := range f.Values {
			if prev, dup := rec.Values[a]; dup && !prev.Equal(v) {
				return Record{}, fmt.Errorf("%w: attribute %q has conflicting values", ErrFragmentMismatch, a)
			}
			rec.Values[a] = v
		}
	}
	return rec, nil
}

// PartitionSpec is the serializable form of a Partition, for
// provisioning multi-process deployments.
type PartitionSpec struct {
	Attrs     []Attr            `json:"attrs"`
	Undefined []Attr            `json:"undefined"`
	Nodes     []string          `json:"nodes"`
	NodeAttrs map[string][]Attr `json:"node_attrs"`
}

// Spec exports the partition (and its schema) for serialization.
func (p *Partition) Spec() PartitionSpec {
	und := make([]Attr, 0, len(p.schema.Undefined))
	for _, a := range p.schema.Attrs {
		if p.schema.Undefined[a] {
			und = append(und, a)
		}
	}
	nodeAttrs := make(map[string][]Attr, len(p.nodeAttrs))
	for n, attrs := range p.nodeAttrs {
		nodeAttrs[n] = append([]Attr(nil), attrs...)
	}
	return PartitionSpec{
		Attrs:     append([]Attr(nil), p.schema.Attrs...),
		Undefined: und,
		Nodes:     append([]string(nil), p.nodes...),
		NodeAttrs: nodeAttrs,
	}
}

// FromSpec rebuilds a partition (validating it) from a spec.
func FromSpec(spec PartitionSpec) (*Partition, error) {
	schema, err := NewSchema(spec.Attrs, spec.Undefined...)
	if err != nil {
		return nil, err
	}
	return NewPartition(schema, spec.Nodes, spec.NodeAttrs)
}

// Transaction models paper eq. (1): T = {R_T, E_T, L_T, tsn, ttn}.
type Transaction struct {
	// TSN is the unique transaction sequence number.
	TSN uint64
	// TTN is the transaction type number.
	TTN uint64
	// Rules are the boolean specifications R_T, expressed in the query
	// language of internal/query and checked by the auditor.
	Rules []string
	// Events are the atomic events E_T in execution order.
	Events []Event
}

// Event is one atomic event e_j^(i)(T) executed by application node u_i,
// together with its log record (eq. 3-4).
type Event struct {
	// Seq is j, the event's position in the transaction.
	Seq int
	// Node is u_i, the application node that executed the event.
	Node string
	// Record is the log record the event produced.
	Record Record
}
