package workpool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		for _, n := range []int{0, 1, 3, 7, 64, 257} {
			p := New(workers)
			counts := make([]atomic.Int32, n)
			if err := p.Map(n, func(i int) error {
				counts[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	p := New(4)
	var calls atomic.Int32
	err := p.Map(100, func(i int) error {
		calls.Add(1)
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	// Early stop: the batch must not have run to completion after the
	// failure was recorded (some in-flight calls finishing is fine).
	if calls.Load() == 100 {
		t.Log("note: all indices ran before the error propagated (tiny batch race); acceptable but unexpected")
	}
}

func TestMapNestedDoesNotDeadlock(t *testing.T) {
	p := New(2)
	err := p.Map(8, func(i int) error {
		return p.Map(8, func(j int) error {
			if j < 0 {
				return fmt.Errorf("impossible")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSharedMap(t *testing.T) {
	var sum atomic.Int64
	if err := Map(50, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 50*49/2 {
		t.Fatalf("sum = %d, want %d", got, 50*49/2)
	}
	if Shared.Workers() < 1 {
		t.Fatalf("shared pool has %d workers", Shared.Workers())
	}
}

func BenchmarkMap(b *testing.B) {
	p := New(runtime.GOMAXPROCS(0))
	work := func(i int) error {
		x := 0
		for k := 0; k < 1000; k++ {
			x += k ^ i
		}
		_ = x
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Map(64, work); err != nil {
			b.Fatal(err)
		}
	}
}
