// Package workpool provides the process-wide worker pool the crypto
// batch APIs fan out over. One GOMAXPROCS-sized set of persistent
// workers serves every caller, so concurrent protocol rounds share the
// machine instead of each spawning its own goroutine herd (the pre-pool
// EncryptAll spawned GOMAXPROCS goroutines per call; under a multi-node
// in-process deployment that multiplied into hundreds of runnable
// goroutines fighting over the same cores).
//
// The submitting goroutine always participates in its own batch, so
// Map makes progress even when every worker is busy with other batches
// — saturation degrades to the serial loop, it never deadlocks. On a
// single-CPU machine the pool contributes nothing and Map is exactly
// the serial loop plus one atomic.
package workpool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"confaudit/internal/telemetry"
)

// task is one batch's work-stealing state: workers and the submitter
// pull indices from next until n is exhausted.
type task struct {
	next atomic.Int64
	n    int
	fn   func(int) error

	mu  sync.Mutex
	err error
	wg  sync.WaitGroup // open worker claims on this task
}

// run drains indices until the range is exhausted or a call fails.
// The first error wins and stops further index claims for every
// participant (already-running calls finish).
func (t *task) run() {
	for {
		i := int(t.next.Add(1)) - 1
		if i >= t.n || t.failed() {
			return
		}
		if err := t.fn(i); err != nil {
			t.mu.Lock()
			if t.err == nil {
				t.err = err
			}
			t.mu.Unlock()
			return
		}
	}
}

func (t *task) failed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err != nil
}

// Pool is a fixed set of persistent workers fed through a small queue.
type Pool struct {
	workers int
	queue   chan *task
	busy    atomic.Int64

	startOnce sync.Once
}

// New creates a pool with the given worker count (minimum 1).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers, queue: make(chan *task, workers)}
}

// Shared is the process-wide default pool, sized to GOMAXPROCS at
// first use. Its workers start lazily so importing the package costs
// nothing.
var Shared = New(runtime.GOMAXPROCS(0))

// start launches the persistent workers once.
func (p *Pool) start() {
	p.startOnce.Do(func() {
		for w := 0; w < p.workers; w++ {
			go p.worker()
		}
	})
}

func (p *Pool) worker() {
	for t := range p.queue {
		p.busy.Add(1)
		telemetry.M.Gauge(telemetry.GaugeWorkpoolBusy).Set(p.busy.Load())
		t.run()
		p.busy.Add(-1)
		telemetry.M.Gauge(telemetry.GaugeWorkpoolBusy).Set(p.busy.Load())
		t.wg.Done()
	}
}

// Busy reports the number of workers currently executing a batch.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(i) for every i in [0, n), preserving nothing about
// execution order but guaranteeing all calls complete (or stop early
// on the first error) before Map returns. The caller's goroutine works
// through the batch alongside up to workers-1 pool workers; offers the
// pool cannot accept immediately are simply skipped, so a saturated —
// or single-CPU — pool degrades to the caller's serial loop.
func (p *Pool) Map(n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	t := &task{n: n, fn: fn}
	if n > 1 && p.workers > 1 {
		p.start()
		// Offer at most enough claims to cover the batch; never block
		// on a busy pool (nested or concurrent Maps keep making
		// progress through the submitting goroutine).
		offers := p.workers - 1
		if offers > n-1 {
			offers = n - 1
		}
	offer:
		for k := 0; k < offers; k++ {
			t.wg.Add(1)
			select {
			case p.queue <- t:
			default:
				t.wg.Done()
				break offer // queue full; the caller still runs the batch
			}
		}
	}
	t.run()
	t.wg.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Map runs fn over [0, n) on the shared pool.
func Map(n int, fn func(int) error) error { return Shared.Map(n, fn) }
