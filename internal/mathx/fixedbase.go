package mathx

import (
	"math/big"
	"sync"
)

// Fixed-base windowed exponentiation (Yao's method). A FixedBase
// precomputes the power table
//
//	T[i] = base^(2^(w·i)) mod m,  w = 4
//
// once; every later base^e then costs only multiplications — one per
// nonzero radix-16 digit of e plus 2·15 for the digit-value fold —
// instead of the |e| squarings a general modular exponentiation pays.
// The table build costs one full-width exponentiation worth of
// squarings, so a base amortizes after its second use.
//
// This is the standard optimization for the DLA hot paths where the
// BASE repeats while the exponent varies: re-encrypting the same
// HashToQR-encoded elements under fresh session keys query after
// query, and folding the agreed accumulator base X0 at the start of
// every integrity circulation.
//
// Division of labor with the Montgomery engine: for odd moduli (every
// DLA group prime and accumulator modulus) the table is CONSTRUCTED
// in the Montgomery domain — 4 REDC squarings per digit instead of a
// big.Int.Exp (with its own context setup) per entry — and then
// converted out, one cheap REDC-by-one per entry. Entries are STORED
// and EVALUATED in canonical form with the big.Int Mul+QuoRem fold:
// math/big's assembly multiply kernels beat the portable word-level
// CIOS kernel at evaluation time (measured ~20% on the reference box),
// so the in-domain fold is a construction-only tool. Results are
// bit-identical to big.Int.Exp either way, pinned by the differential
// tests.
type FixedBase struct {
	mod    *big.Int
	window uint
	// table[i] = base^(16^i) mod m, canonical least non-negative form.
	table []*big.Int
}

const fixedBaseWindow = 4

// NewFixedBase precomputes the powers of base modulo mod covering
// exponents up to maxExpBits bits. base is reduced modulo mod.
func NewFixedBase(base, mod *big.Int, maxExpBits int) *FixedBase {
	if mod == nil || mod.Sign() <= 0 || maxExpBits <= 0 {
		return nil
	}
	digits := (maxExpBits + fixedBaseWindow - 1) / fixedBaseWindow
	fb := &FixedBase{mod: mod, window: fixedBaseWindow, table: make([]*big.Int, digits)}
	if mg, err := NewMontgomery(mod); err == nil {
		// Build in-domain — 4 squarings per digit — then exit each
		// entry to canonical form for the evaluation fold.
		sc := mg.getScratch()
		cur := make([]uint64, mg.k)
		natSetBig(sc.b, new(big.Int).Mod(base, mod))
		mg.enter(cur, sc.b, sc.t)
		out := make([]uint64, mg.k)
		for i := 0; i < digits; i++ {
			mg.montMulOne(out, cur, sc.t)
			fb.table[i] = natToBig(out)
			if i < digits-1 {
				for s := 0; s < fixedBaseWindow; s++ {
					mg.montMul(cur, cur, cur, sc.t)
				}
			}
		}
		mg.putScratch(sc)
		return fb
	}
	// Even modulus: REDC refuses service; chain big.Int squarings.
	sixteen := big.NewInt(1 << fixedBaseWindow)
	cur := new(big.Int).Mod(base, mod)
	for i := 0; i < digits; i++ {
		fb.table[i] = cur
		if i < digits-1 {
			cur = new(big.Int).Exp(cur, sixteen, mod)
		}
	}
	return fb
}

// Covers reports whether the table spans exponents of e's width.
func (fb *FixedBase) Covers(e *big.Int) bool {
	return fb != nil && e != nil && e.Sign() >= 0 &&
		(e.BitLen()+int(fb.window)-1)/int(fb.window) <= len(fb.table)
}

// fbScratch holds the per-evaluation temporaries of the Yao fold. The
// fold performs ~|e|/4 + 15 modular multiplications; routing each
// reduction through a pooled quotient (QuoRem reuses its receivers'
// storage) instead of Int.Mod (which allocates a fresh quotient every
// call) keeps the fold at a handful of allocations per exponentiation.
type fbScratch struct {
	digits []byte
	a      big.Int // running result; copied out once at the end
	b      big.Int // digit-v product accumulator
	prod   big.Int // unreduced multiplication result
	q      big.Int // discarded quotient of each reduction
}

var fbScratchPool = sync.Pool{New: func() any { return new(fbScratch) }}

// Exp computes base^e mod m from the table, or nil when the table does
// not cover e (caller falls back to big.Int.Exp). The result is the
// canonical least non-negative residue, identical to big.Int.Exp's.
// Safe for concurrent callers: all mutable state is pooled per call,
// so steady-state evaluations allocate only the returned value.
func (fb *FixedBase) Exp(e *big.Int) *big.Int {
	if !fb.Covers(e) {
		return nil
	}
	if e.Sign() == 0 {
		return new(big.Int).Mod(big.NewInt(1), fb.mod)
	}
	sc := fbScratchPool.Get().(*fbScratch)
	// Radix-16 digits of e, low to high.
	digits := sc.digits[:0]
	for _, w := range e.Bits() {
		for s := 0; s < bitsPerWord; s += fixedBaseWindow {
			digits = append(digits, byte((w>>uint(s))&0xF))
		}
	}
	// Trim high zero digits.
	for len(digits) > 0 && digits[len(digits)-1] == 0 {
		digits = digits[:len(digits)-1]
	}
	// Yao's evaluation: result = Π_{v=15..1} (Π_{d_i=v} T[i])^v,
	// computed as A ← A·B with B accumulating the digit-v products.
	// A and every temporary live in the pooled scratch (so their limb
	// arrays stop growing after warmup); only the returned copy of A is
	// freshly allocated.
	a := sc.a.SetInt64(1)
	b := sc.b.SetInt64(1)
	for v := byte(15); v >= 1; v-- {
		for i, d := range digits {
			if d == v {
				sc.prod.Mul(b, fb.table[i])
				sc.q.QuoRem(&sc.prod, fb.mod, b)
			}
		}
		sc.prod.Mul(a, b)
		sc.q.QuoRem(&sc.prod, fb.mod, a)
	}
	out := new(big.Int).Set(a)
	sc.digits = digits
	fbScratchPool.Put(sc)
	return out
}

// bitsPerWord is the width of a big.Word on this platform.
const bitsPerWord = 32 << (^big.Word(0) >> 63)
