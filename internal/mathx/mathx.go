// Package mathx provides the modular-arithmetic substrate shared by all
// cryptographic components of the DLA system: safe-prime groups, hashing
// into prime-order subgroups, random scalar generation, and Lagrange
// interpolation over Z_p.
//
// Every protocol in the paper (Pohlig-Hellman commutative encryption,
// Shamir secret sharing, one-way accumulators, oblivious transfer) works
// in Z_p* for a large prime p, so this package centralizes the number
// theory and the standard groups.
package mathx

import (
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Common small constants. These are treated as immutable; callers must
// not modify them.
var (
	one  = big.NewInt(1)
	two  = big.NewInt(2)
	zero = big.NewInt(0)
)

// Errors returned by parameter validation.
var (
	// ErrNotSafePrime indicates a modulus that is not a safe prime.
	ErrNotSafePrime = errors.New("mathx: modulus is not a safe prime")
	// ErrBadBitSize indicates an unsupported bit size request.
	ErrBadBitSize = errors.New("mathx: unsupported bit size")
)

// Group describes the multiplicative group used by the commutative
// cipher and the relaxed-SMC protocols: Z_p* for a safe prime p = 2q+1.
// The prime-order-q subgroup (the quadratic residues) is where message
// encodings live, so that exponentiation leaks nothing through the
// Legendre symbol.
type Group struct {
	// P is the safe prime modulus.
	P *big.Int
	// Q is the Sophie Germain prime (P-1)/2, the subgroup order.
	Q *big.Int
}

// NewGroup validates that p is a safe prime and returns the group.
// Primality is checked probabilistically (64 Miller-Rabin rounds), which
// is the standard bar for crypto parameters.
func NewGroup(p *big.Int) (*Group, error) {
	if p == nil || p.Sign() <= 0 {
		return nil, fmt.Errorf("%w: nil or non-positive", ErrNotSafePrime)
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	if !p.ProbablyPrime(64) || !q.ProbablyPrime(64) {
		return nil, ErrNotSafePrime
	}
	return &Group{P: new(big.Int).Set(p), Q: q}, nil
}

// mustGroup builds a Group from a known-good hex constant. It panics on
// malformed constants, which can only happen if the embedded table is
// edited incorrectly; the table is covered by TestStandardGroups.
func mustGroup(hexP string) *Group {
	p, ok := new(big.Int).SetString(hexP, 16)
	if !ok {
		panic("mathx: bad embedded prime constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	return &Group{P: p, Q: q}
}

// Standard MODP groups. All are safe primes published in RFC 2409
// (Oakley groups 1 and 2) and RFC 3526 (1536/2048-bit MODP). Embedding
// them avoids multi-second safe-prime generation at startup, exactly as
// deployed systems do.
var (
	// Oakley768 is the RFC 2409 First Oakley Group (768-bit). Too small
	// for production; retained for fast protocol tests.
	Oakley768 = mustGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF")

	// Oakley1024 is the RFC 2409 Second Oakley Group (1024-bit).
	Oakley1024 = mustGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
			"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF")

	// MODP1536 is the RFC 3526 1536-bit MODP group.
	MODP1536 = mustGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
			"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05" +
			"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB" +
			"9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF")

	// MODP2048 is the RFC 3526 2048-bit MODP group.
	MODP2048 = mustGroup(
		"FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74" +
			"020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437" +
			"4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
			"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05" +
			"98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB" +
			"9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
			"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718" +
			"3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF")
)

// StandardGroup returns the embedded safe-prime group with the given bit
// size (768, 1024, 1536, or 2048).
func StandardGroup(bits int) (*Group, error) {
	switch bits {
	case 768:
		return Oakley768, nil
	case 1024:
		return Oakley1024, nil
	case 1536:
		return MODP1536, nil
	case 2048:
		return MODP2048, nil
	default:
		return nil, fmt.Errorf("%w: %d (want 768, 1024, 1536, or 2048)", ErrBadBitSize, bits)
	}
}

// GenerateGroup generates a fresh safe-prime group with the requested
// modulus bit length. Intended for tests with small sizes; production
// callers should use StandardGroup.
func GenerateGroup(rng io.Reader, bits int) (*Group, error) {
	if bits < 16 {
		return nil, fmt.Errorf("%w: %d (minimum 16)", ErrBadBitSize, bits)
	}
	if rng == nil {
		rng = rand.Reader
	}
	for {
		q, err := rand.Prime(rng, bits-1)
		if err != nil {
			return nil, fmt.Errorf("mathx: generating Sophie Germain prime: %w", err)
		}
		p := new(big.Int).Lsh(q, 1)
		p.Add(p, one)
		if p.ProbablyPrime(64) {
			return &Group{P: p, Q: q}, nil
		}
	}
}

// Bits reports the bit length of the modulus.
func (g *Group) Bits() int { return g.P.BitLen() }

// HashToQR deterministically maps arbitrary bytes into the quadratic
// residue subgroup of the group: h = SHA-256*(data) mod p, squared mod p.
// Squaring guarantees the result lies in the prime-order-q subgroup, so
// commutative exponentiation over encodings leaks no residuosity bit.
// For moduli wider than 256 bits the digest is extended by counter-mode
// hashing so encodings are distributed over the whole group.
//
// Equal inputs map to equal group elements; distinct inputs collide with
// probability bounded by the SHA-256 collision bound, which is the
// paper's eq. (7) requirement.
func (g *Group) HashToQR(data []byte) *big.Int {
	need := (g.P.BitLen() + 7) / 8
	buf := make([]byte, 0, need+sha256.Size)
	var ctr [1]byte
	for len(buf) < need {
		h := sha256.New()
		h.Write(ctr[:])
		h.Write(data)
		buf = h.Sum(buf)
		ctr[0]++
	}
	x := new(big.Int).SetBytes(buf[:need])
	x.Mod(x, g.P)
	// Avoid the degenerate encodings 0 and ±1, whose powers are trivial.
	if x.Sign() == 0 || x.Cmp(one) == 0 {
		x.Add(x, two)
	}
	return x.Exp(x, two, g.P)
}

// RandScalar returns a uniformly random integer in [1, max-1], i.e. a
// nonzero element modulo max.
func RandScalar(rng io.Reader, max *big.Int) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if max.Cmp(two) < 0 {
		return nil, fmt.Errorf("mathx: modulus %v too small for a nonzero scalar", max)
	}
	bound := new(big.Int).Sub(max, one)
	for {
		x, err := rand.Int(rng, bound)
		if err != nil {
			return nil, fmt.Errorf("mathx: sampling scalar: %w", err)
		}
		x.Add(x, one) // shift to [1, max-1]
		return x, nil
	}
}

// RandCoprime returns a uniformly random integer in [2, n-1] that is
// coprime to n. Used to sample Pohlig-Hellman exponents (coprime to p-1)
// and accumulator exponents.
func RandCoprime(rng io.Reader, n *big.Int) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if n.Cmp(big.NewInt(4)) < 0 {
		return nil, fmt.Errorf("mathx: modulus %v too small for a coprime sample", n)
	}
	g := new(big.Int)
	for {
		x, err := rand.Int(rng, n)
		if err != nil {
			return nil, fmt.Errorf("mathx: sampling coprime: %w", err)
		}
		if x.Cmp(two) < 0 {
			continue
		}
		if g.GCD(nil, nil, x, n); g.Cmp(one) == 0 {
			return x, nil
		}
	}
}

// RandCoprimeBits returns a random integer of exactly the given bit
// length that is coprime to n. Short exponents keep modular
// exponentiation cheap while the inverse (computed over the full
// modulus) stays full width; see the commutative key pool for the
// security argument.
func RandCoprimeBits(rng io.Reader, n *big.Int, bits int) (*big.Int, error) {
	if rng == nil {
		rng = rand.Reader
	}
	if bits < 2 || bits >= n.BitLen() {
		return RandCoprime(rng, n)
	}
	// Sample uniformly in [2^(bits-1), 2^bits) until coprime to n. The
	// density of coprimes is high for n = 2q (safe-prime groups), so a
	// couple of iterations suffice.
	low := new(big.Int).Lsh(one, uint(bits-1))
	g := new(big.Int)
	for {
		x, err := rand.Int(rng, low)
		if err != nil {
			return nil, fmt.Errorf("mathx: sampling short coprime: %w", err)
		}
		x.Add(x, low) // force the top bit: exactly `bits` bits
		if g.GCD(nil, nil, x, n); g.Cmp(one) == 0 {
			return x, nil
		}
	}
}

// InverseMod returns x^-1 mod n, or an error if x is not invertible.
func InverseMod(x, n *big.Int) (*big.Int, error) {
	inv := new(big.Int).ModInverse(x, n)
	if inv == nil {
		return nil, fmt.Errorf("mathx: %v is not invertible modulo %v", x, n)
	}
	return inv, nil
}

// LagrangeZero interpolates the degree-(len(xs)-1) polynomial through the
// points (xs[i], ys[i]) over Z_p and evaluates it at zero. This is the
// reconstruction step of Shamir secret sharing and of the paper's secure
// sum protocol (§3.5): the 0th-order coefficient of F(z) is the secret.
//
// The xs must be distinct and nonzero modulo p.
func LagrangeZero(p *big.Int, xs, ys []*big.Int) (*big.Int, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("mathx: mismatched point counts %d and %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, errors.New("mathx: no points to interpolate")
	}
	acc := new(big.Int)
	num := new(big.Int)
	den := new(big.Int)
	term := new(big.Int)
	for i := range xs {
		// L_i(0) = prod_{j != i} x_j / (x_j - x_i)
		num.SetInt64(1)
		den.SetInt64(1)
		for j := range xs {
			if j == i {
				continue
			}
			num.Mul(num, xs[j])
			num.Mod(num, p)
			term.Sub(xs[j], xs[i])
			den.Mul(den, term)
			den.Mod(den, p)
		}
		invDen, err := InverseMod(den, p)
		if err != nil {
			return nil, fmt.Errorf("mathx: duplicate interpolation abscissa: %w", err)
		}
		term.Mul(num, invDen)
		term.Mod(term, p)
		term.Mul(term, ys[i])
		term.Mod(term, p)
		acc.Add(acc, term)
		acc.Mod(acc, p)
	}
	return acc, nil
}

// EvalPoly evaluates the polynomial with coefficients coeffs (low order
// first) at x over Z_p using Horner's rule.
func EvalPoly(p *big.Int, coeffs []*big.Int, x *big.Int) *big.Int {
	acc := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, coeffs[i])
		acc.Mod(acc, p)
	}
	return acc
}

// CmpZero reports whether v is congruent to zero modulo p.
func CmpZero(v, p *big.Int) bool {
	return new(big.Int).Mod(v, p).Cmp(zero) == 0
}
