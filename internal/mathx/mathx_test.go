package mathx

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func TestStandardGroups(t *testing.T) {
	cases := []struct {
		name string
		g    *Group
		bits int
	}{
		{"Oakley768", Oakley768, 768},
		{"Oakley1024", Oakley1024, 1024},
		{"MODP1536", MODP1536, 1536},
		{"MODP2048", MODP2048, 2048},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.Bits(); got != tc.bits {
				t.Fatalf("Bits() = %d, want %d", got, tc.bits)
			}
			if !tc.g.P.ProbablyPrime(64) {
				t.Fatal("modulus not prime")
			}
			if !tc.g.Q.ProbablyPrime(64) {
				t.Fatal("(p-1)/2 not prime: group is not a safe-prime group")
			}
			// q = (p-1)/2 exactly.
			want := new(big.Int).Rsh(new(big.Int).Sub(tc.g.P, big.NewInt(1)), 1)
			if tc.g.Q.Cmp(want) != 0 {
				t.Fatal("Q != (P-1)/2")
			}
		})
	}
}

func TestStandardGroupLookup(t *testing.T) {
	for _, bits := range []int{768, 1024, 1536, 2048} {
		g, err := StandardGroup(bits)
		if err != nil {
			t.Fatalf("StandardGroup(%d): %v", bits, err)
		}
		if g.Bits() != bits {
			t.Fatalf("StandardGroup(%d) has %d bits", bits, g.Bits())
		}
	}
	if _, err := StandardGroup(512); err == nil {
		t.Fatal("StandardGroup(512) should fail")
	}
}

func TestNewGroupRejectsNonSafePrimes(t *testing.T) {
	cases := []struct {
		name string
		p    *big.Int
	}{
		{"nil", nil},
		{"zero", big.NewInt(0)},
		{"composite", big.NewInt(15)},
		{"prime but not safe", big.NewInt(13)}, // (13-1)/2 = 6 composite
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewGroup(tc.p); err == nil {
				t.Fatalf("NewGroup(%v) accepted a non-safe prime", tc.p)
			}
		})
	}
}

func TestNewGroupAcceptsSafePrime(t *testing.T) {
	g, err := NewGroup(big.NewInt(23)) // 23 = 2*11+1, both prime
	if err != nil {
		t.Fatalf("NewGroup(23): %v", err)
	}
	if g.Q.Int64() != 11 {
		t.Fatalf("Q = %v, want 11", g.Q)
	}
}

func TestGenerateGroup(t *testing.T) {
	g, err := GenerateGroup(rand.Reader, 64)
	if err != nil {
		t.Fatalf("GenerateGroup: %v", err)
	}
	if !g.P.ProbablyPrime(64) || !g.Q.ProbablyPrime(64) {
		t.Fatal("generated group is not a safe-prime group")
	}
	if g.Bits() != 64 {
		t.Fatalf("generated %d-bit modulus, want 64", g.Bits())
	}
	if _, err := GenerateGroup(rand.Reader, 8); err == nil {
		t.Fatal("GenerateGroup(8) should fail")
	}
}

func TestHashToQRDeterministicAndInSubgroup(t *testing.T) {
	g := Oakley768
	a := g.HashToQR([]byte("transaction T1100265"))
	b := g.HashToQR([]byte("transaction T1100265"))
	if a.Cmp(b) != 0 {
		t.Fatal("HashToQR is not deterministic")
	}
	c := g.HashToQR([]byte("transaction T1100266"))
	if a.Cmp(c) == 0 {
		t.Fatal("distinct inputs collided")
	}
	// Membership in the order-q subgroup: x^q == 1 (mod p).
	oneBig := big.NewInt(1)
	for _, x := range []*big.Int{a, c} {
		if new(big.Int).Exp(x, g.Q, g.P).Cmp(oneBig) != 0 {
			t.Fatal("HashToQR output not in the quadratic-residue subgroup")
		}
	}
}

func TestHashToQRCoversModulusWidth(t *testing.T) {
	// With counter-mode extension the encodings should exceed 256 bits
	// for most inputs on a 768-bit modulus.
	g := Oakley768
	wide := 0
	for i := 0; i < 32; i++ {
		x := g.HashToQR([]byte{byte(i)})
		if x.BitLen() > 300 {
			wide++
		}
	}
	if wide < 30 {
		t.Fatalf("only %d/32 encodings wider than 300 bits; extension broken", wide)
	}
}

func TestHashToQRQuick(t *testing.T) {
	g := Oakley768
	f := func(a, b []byte) bool {
		ea, eb := g.HashToQR(a), g.HashToQR(b)
		if bytes.Equal(a, b) {
			return ea.Cmp(eb) == 0
		}
		return ea.Cmp(eb) != 0 // collision would falsify (paper eq. 7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandScalarRange(t *testing.T) {
	max := big.NewInt(97)
	for i := 0; i < 200; i++ {
		x, err := RandScalar(rand.Reader, max)
		if err != nil {
			t.Fatal(err)
		}
		if x.Sign() <= 0 || x.Cmp(max) >= 0 {
			t.Fatalf("scalar %v out of [1, 96]", x)
		}
	}
	if _, err := RandScalar(rand.Reader, big.NewInt(1)); err == nil {
		t.Fatal("RandScalar(1) should fail")
	}
}

func TestRandCoprime(t *testing.T) {
	n := big.NewInt(2 * 3 * 5 * 7)
	g := new(big.Int)
	for i := 0; i < 100; i++ {
		x, err := RandCoprime(rand.Reader, n)
		if err != nil {
			t.Fatal(err)
		}
		if g.GCD(nil, nil, x, n); g.Int64() != 1 {
			t.Fatalf("gcd(%v, %v) = %v, want 1", x, n, g)
		}
	}
	if _, err := RandCoprime(rand.Reader, big.NewInt(3)); err == nil {
		t.Fatal("RandCoprime(3) should fail")
	}
}

func TestInverseMod(t *testing.T) {
	p := big.NewInt(101)
	x := big.NewInt(37)
	inv, err := InverseMod(x, p)
	if err != nil {
		t.Fatal(err)
	}
	prod := new(big.Int).Mul(x, inv)
	prod.Mod(prod, p)
	if prod.Int64() != 1 {
		t.Fatalf("x * x^-1 = %v mod %v, want 1", prod, p)
	}
	if _, err := InverseMod(big.NewInt(10), big.NewInt(20)); err == nil {
		t.Fatal("non-invertible element should error")
	}
}

func TestLagrangeZeroRecoversConstantTerm(t *testing.T) {
	p := big.NewInt(7919)
	// f(z) = 42 + 3z + 5z^2
	coeffs := []*big.Int{big.NewInt(42), big.NewInt(3), big.NewInt(5)}
	xs := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3)}
	ys := make([]*big.Int, len(xs))
	for i, x := range xs {
		ys[i] = EvalPoly(p, coeffs, x)
	}
	got, err := LagrangeZero(p, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Fatalf("LagrangeZero = %v, want 42", got)
	}
}

func TestLagrangeZeroErrors(t *testing.T) {
	p := big.NewInt(7919)
	if _, err := LagrangeZero(p, nil, nil); err == nil {
		t.Fatal("empty interpolation should fail")
	}
	if _, err := LagrangeZero(p, []*big.Int{big.NewInt(1)}, nil); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	xs := []*big.Int{big.NewInt(2), big.NewInt(2)}
	ys := []*big.Int{big.NewInt(1), big.NewInt(2)}
	if _, err := LagrangeZero(p, xs, ys); err == nil {
		t.Fatal("duplicate abscissae should fail")
	}
}

func TestLagrangeZeroQuick(t *testing.T) {
	p := big.NewInt(104729)
	f := func(secret uint32, a, b uint32) bool {
		coeffs := []*big.Int{
			new(big.Int).Mod(big.NewInt(int64(secret)), p),
			new(big.Int).Mod(big.NewInt(int64(a)), p),
			new(big.Int).Mod(big.NewInt(int64(b)), p),
		}
		xs := []*big.Int{big.NewInt(5), big.NewInt(9), big.NewInt(14)}
		ys := make([]*big.Int, len(xs))
		for i, x := range xs {
			ys[i] = EvalPoly(p, coeffs, x)
		}
		got, err := LagrangeZero(p, xs, ys)
		return err == nil && got.Cmp(coeffs[0]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalPolyHorner(t *testing.T) {
	p := big.NewInt(1009)
	// f(z) = 7 + 2z + z^3 at z=5: 7 + 10 + 125 = 142
	coeffs := []*big.Int{big.NewInt(7), big.NewInt(2), big.NewInt(0), big.NewInt(1)}
	got := EvalPoly(p, coeffs, big.NewInt(5))
	if got.Int64() != 142 {
		t.Fatalf("EvalPoly = %v, want 142", got)
	}
	if got := EvalPoly(p, nil, big.NewInt(5)); got.Sign() != 0 {
		t.Fatalf("empty polynomial should evaluate to 0, got %v", got)
	}
}

func TestCmpZero(t *testing.T) {
	p := big.NewInt(13)
	if !CmpZero(big.NewInt(26), p) {
		t.Fatal("26 mod 13 should be zero")
	}
	if CmpZero(big.NewInt(27), p) {
		t.Fatal("27 mod 13 should be nonzero")
	}
	if !CmpZero(big.NewInt(-13), p) {
		t.Fatal("-13 mod 13 should be zero")
	}
}

func BenchmarkHashToQR(b *testing.B) {
	g := Oakley1024
	data := []byte("glsn=139aef78 time=20:18:35 id=U1 tid=T1100265")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.HashToQR(data)
	}
}

func BenchmarkLagrangeZero(b *testing.B) {
	g := Oakley768
	p := g.P
	const k = 8
	xs := make([]*big.Int, k)
	ys := make([]*big.Int, k)
	coeffs := make([]*big.Int, k)
	for i := range coeffs {
		coeffs[i] = big.NewInt(int64(i*i + 1))
	}
	for i := range xs {
		xs[i] = big.NewInt(int64(i + 1))
		ys[i] = EvalPoly(p, coeffs, xs[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LagrangeZero(p, xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
