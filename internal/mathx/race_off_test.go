//go:build !race

package mathx

// raceEnabled reports whether the race detector is instrumenting this
// build. Allocation-count assertions are skipped under -race: the
// detector's instrumentation allocates on its own behalf and defeats
// sync.Pool reuse, so AllocsPerRun measures the tool, not the code.
const raceEnabled = false
