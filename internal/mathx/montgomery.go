package mathx

import (
	"errors"
	"math/big"
	"math/bits"
	"sync"
)

// Montgomery-form modular arithmetic.
//
// A Montgomery context fixes an odd modulus n and precomputes the
// constants REDC needs — R² mod n (for entering the domain) and
// n′ = -n⁻¹ mod 2⁶⁴ (the per-word reduction factor) — so that a modular
// multiplication becomes an interleaved multiply-reduce (CIOS) over raw
// uint64 limbs with no division and no allocation. The context is what
// the DLA hot paths share: fixed-base powers tables are constructed by
// in-domain squarings instead of re-running big.Int.Exp per digit, and
// batch exponentiation amortizes the domain entry/exit and scratch
// buffers across a whole relay block.
//
// Results are bit-identical to math/big: REDC with the trailing
// conditional subtraction returns the canonical least non-negative
// residue, exactly like big.Int.Exp and big.Int.Mod. The differential
// tests and FuzzMontgomeryVsBig pin this for random moduli, bases, and
// the exponent edge cases (0, 1, group order).
//
// Scope note, measured on the 1-vCPU reference box: math/big's inner
// multiply loops are assembly while the CIOS kernel here is portable
// Go (~600 ns per 768-bit multiply versus ~350 ns inside math/big), so
// anything math/big can express directly stays on math/big — single
// general exponentiations use big.Int.Exp, and the Yao fixed-base fold
// evaluates over big.Int Mul+QuoRem (the in-domain fold measured ~20%
// slower). The Montgomery context wins where the alternative is many
// separate big.Int contexts: powers-table construction (64 big.Int.Exp
// calls, each re-deriving RR, collapse to 4 in-domain squarings per
// digit) and batched folds that amortize one entry/exit across a relay
// block. See DESIGN.md §7.3.

// ErrEvenModulus reports a modulus REDC cannot handle; callers fall
// back to big.Int arithmetic.
var ErrEvenModulus = errors.New("mathx: montgomery requires an odd modulus")

// Montgomery is a reusable Montgomery-arithmetic context for one odd
// modulus. It is safe for concurrent use; per-call scratch comes from
// an internal pool sized at construction so steady-state operations
// allocate only their results.
type Montgomery struct {
	mod *big.Int
	k   int      // limb count of the modulus
	n   []uint64 // modulus limbs, little-endian
	n0  uint64   // -mod⁻¹ mod 2⁶⁴
	rr  []uint64 // R² mod n, R = 2^(64k)
	one []uint64 // R mod n — the Montgomery form of 1

	scratch sync.Pool // *montScratch
}

// montScratch holds every temporary a Montgomery operation needs, sized
// once for the context's limb count so pooled reuse is allocation-free.
type montScratch struct {
	t      []uint64 // k+2-limb CIOS accumulator
	a, b   []uint64 // k-limb operands
	pows   []uint64 // 16 k-limb window entries, one backing array
	digits []byte   // exponent nibbles, low to high
	powp   [16][]uint64
}

func (m *Montgomery) newScratch() *montScratch {
	sc := &montScratch{
		t:      make([]uint64, m.k+2),
		a:      make([]uint64, m.k),
		b:      make([]uint64, m.k),
		pows:   make([]uint64, 16*m.k),
		digits: make([]byte, 0, 64),
	}
	for i := range sc.powp {
		sc.powp[i] = sc.pows[i*m.k : (i+1)*m.k]
	}
	return sc
}

func (m *Montgomery) getScratch() *montScratch   { return m.scratch.Get().(*montScratch) }
func (m *Montgomery) putScratch(sc *montScratch) { m.scratch.Put(sc) }

// NewMontgomery builds a context for the given odd modulus > 1.
func NewMontgomery(mod *big.Int) (*Montgomery, error) {
	if mod == nil || mod.Sign() <= 0 || mod.Bit(0) == 0 || mod.BitLen() < 2 {
		return nil, ErrEvenModulus
	}
	k := (mod.BitLen() + 63) / 64
	m := &Montgomery{
		mod: new(big.Int).Set(mod),
		k:   k,
		n:   natFromBig(mod, k),
	}
	// n0 = -n⁻¹ mod 2⁶⁴ by Newton iteration (Dussé–Kaliski).
	y := m.n[0] // n odd ⇒ invertible mod 2⁶⁴
	for i := 0; i < 5; i++ {
		y *= 2 - m.n[0]*y
	}
	m.n0 = -y
	r := new(big.Int).Lsh(big.NewInt(1), uint(64*k))
	m.rr = natFromBig(new(big.Int).Mod(new(big.Int).Mul(r, r), mod), k)
	m.one = natFromBig(new(big.Int).Mod(r, mod), k)
	m.scratch.New = func() any { return m.newScratch() }
	return m, nil
}

// Mod returns the context's modulus. Callers must not modify it.
func (m *Montgomery) Mod() *big.Int { return m.mod }

// natFromBig spreads x (0 ≤ x, fitting k limbs) into little-endian
// uint64 limbs.
func natFromBig(x *big.Int, k int) []uint64 {
	out := make([]uint64, k)
	natSetBig(out, x)
	return out
}

func natSetBig(dst []uint64, x *big.Int) {
	for i := range dst {
		dst[i] = 0
	}
	if bits.UintSize == 64 {
		for i, w := range x.Bits() {
			dst[i] = uint64(w)
		}
		return
	}
	for i, w := range x.Bits() {
		dst[i/2] |= uint64(w) << (32 * uint(i%2))
	}
}

// natToBig converts limbs back to a big.Int.
func natToBig(x []uint64) *big.Int {
	if bits.UintSize == 64 {
		words := make([]big.Word, len(x))
		for i, v := range x {
			words[i] = big.Word(v)
		}
		return new(big.Int).SetBits(words)
	}
	words := make([]big.Word, 2*len(x))
	for i, v := range x {
		words[2*i] = big.Word(uint32(v))
		words[2*i+1] = big.Word(uint32(v >> 32))
	}
	return new(big.Int).SetBits(words)
}

// montMul computes z = x·y·R⁻¹ mod n with the fused CIOS kernel: the
// word shift of each reduction round is folded into the second pass's
// store index, so the accumulator never moves. z must not alias t; z
// aliasing x or y is fine because x[i] and y[j] are read before any
// store to z happens (z is written only at the end).
func (m *Montgomery) montMul(z, x, y []uint64, t []uint64) {
	k := m.k
	n := m.n
	n0 := m.n0
	for i := 0; i <= k; i++ {
		t[i] = 0
	}
	for i := 0; i < k; i++ {
		xi := x[i]
		var c uint64
		for j := 0; j < k; j++ {
			hi, lo := bits.Mul64(xi, y[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			c = hi + cc
			t[j] = lo
		}
		tk := t[k] + c
		var over uint64
		if tk < c {
			over = 1
		}
		q := t[0] * n0
		hi0, lo0 := bits.Mul64(q, n[0])
		_, cc0 := bits.Add64(lo0, t[0], 0)
		c = hi0 + cc0
		for j := 1; j < k; j++ {
			hi, lo := bits.Mul64(q, n[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			c = hi + cc
			t[j-1] = lo
		}
		var cc uint64
		t[k-1], cc = bits.Add64(tk, c, 0)
		t[k] = over + cc
	}
	if t[k] != 0 || !natLess(t[:k], n) {
		var b uint64
		for i := 0; i < k; i++ {
			z[i], b = bits.Sub64(t[i], n[i], b)
		}
		return
	}
	copy(z, t[:k])
}

// natLess reports x < y for equal-length limb vectors.
func natLess(x, y []uint64) bool {
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// enter converts x (canonical residue limbs) into the Montgomery
// domain: z = x·R mod n.
func (m *Montgomery) enter(z, x []uint64, t []uint64) { m.montMul(z, x, m.rr, t) }

// montMulOne is montMul with y = 1 — a bare REDC pass converting z out
// of the Montgomery domain to the canonical residue — avoiding the need
// to materialize a k-limb unit vector.
func (m *Montgomery) montMulOne(z, x []uint64, t []uint64) {
	k := m.k
	n := m.n
	n0 := m.n0
	for i := 0; i <= k; i++ {
		t[i] = 0
	}
	copy(t, x)
	for i := 0; i < k; i++ {
		q := t[0] * n0
		hi0, lo0 := bits.Mul64(q, n[0])
		_, cc0 := bits.Add64(lo0, t[0], 0)
		c := hi0 + cc0
		for j := 1; j < k; j++ {
			hi, lo := bits.Mul64(q, n[j])
			var cc uint64
			lo, cc = bits.Add64(lo, t[j], 0)
			hi += cc
			lo, cc = bits.Add64(lo, c, 0)
			c = hi + cc
			t[j-1] = lo
		}
		var cc uint64
		t[k-1], cc = bits.Add64(t[k], c, 0)
		t[k] = cc
	}
	if t[k] != 0 || !natLess(t[:k], n) {
		var b uint64
		for i := 0; i < k; i++ {
			z[i], b = bits.Sub64(t[i], n[i], b)
		}
		return
	}
	copy(z, t[:k])
}

// expNibbles recodes e into radix-16 digits, low to high, reusing dst.
func expNibbles(dst []byte, e *big.Int) []byte {
	dst = dst[:0]
	for _, w := range e.Bits() {
		for s := 0; s < bitsPerWord; s += 4 {
			dst = append(dst, byte((w>>uint(s))&0xF))
		}
	}
	for len(dst) > 0 && dst[len(dst)-1] == 0 {
		dst = dst[:len(dst)-1]
	}
	return dst
}

// expMont raises base (in Montgomery form, in sc.a) to e, leaving the
// Montgomery-form result in sc.a. Fixed 4-bit left-to-right windows.
func (m *Montgomery) expMont(sc *montScratch, e *big.Int) {
	sc.digits = expNibbles(sc.digits, e)
	digits := sc.digits
	if len(digits) == 0 { // e == 0
		copy(sc.a, m.one)
		return
	}
	// Window table: powp[0] = 1 (Montgomery one), powp[i] = base^i.
	copy(sc.powp[0], m.one)
	copy(sc.powp[1], sc.a)
	for i := 2; i < 16; i++ {
		m.montMul(sc.powp[i], sc.powp[i-1], sc.powp[1], sc.t)
	}
	acc := sc.a
	copy(acc, sc.powp[digits[len(digits)-1]])
	for i := len(digits) - 2; i >= 0; i-- {
		m.montMul(acc, acc, acc, sc.t)
		m.montMul(acc, acc, acc, sc.t)
		m.montMul(acc, acc, acc, sc.t)
		m.montMul(acc, acc, acc, sc.t)
		if d := digits[i]; d != 0 {
			m.montMul(acc, acc, sc.powp[d], sc.t)
		}
	}
}

// reduce returns base if already in [0, n), else the canonical residue.
func (m *Montgomery) reduce(base *big.Int) *big.Int {
	if base.Sign() < 0 || base.Cmp(m.mod) >= 0 {
		return new(big.Int).Mod(base, m.mod)
	}
	return base
}

// Exp computes base^e mod n for e ≥ 0, bit-identical to big.Int.Exp's
// canonical residue.
func (m *Montgomery) Exp(base, e *big.Int) *big.Int {
	sc := m.getScratch()
	natSetBig(sc.b, m.reduce(base))
	m.enter(sc.a, sc.b, sc.t)
	m.expMont(sc, e)
	m.montMulOne(sc.b, sc.a, sc.t)
	out := natToBig(sc.b)
	m.putScratch(sc)
	return out
}

// ExpBlocks computes base^e mod n for every base, amortizing the
// exponent recoding, scratch buffers, and domain conversions across
// the batch — the entry point the commutative cipher's block APIs use
// when a whole relay block shares one session exponent.
func (m *Montgomery) ExpBlocks(bases []*big.Int, e *big.Int) []*big.Int {
	out := make([]*big.Int, len(bases))
	if len(bases) == 0 {
		return out
	}
	sc := m.getScratch()
	for i, base := range bases {
		natSetBig(sc.b, m.reduce(base))
		m.enter(sc.a, sc.b, sc.t)
		m.expMont(sc, e)
		m.montMulOne(sc.b, sc.a, sc.t)
		out[i] = natToBig(sc.b)
	}
	m.putScratch(sc)
	return out
}
