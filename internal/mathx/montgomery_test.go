package mathx

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"
)

// expRef is the reference the Montgomery engine must match bit for bit.
func expRef(base, e, mod *big.Int) *big.Int {
	return new(big.Int).Exp(base, e, mod)
}

func TestMontgomeryRejectsBadModuli(t *testing.T) {
	for _, mod := range []*big.Int{
		nil,
		big.NewInt(0),
		big.NewInt(-7),
		big.NewInt(1),
		big.NewInt(10),      // even
		big.NewInt(1 << 20), // even, larger
	} {
		if _, err := NewMontgomery(mod); err == nil {
			t.Errorf("NewMontgomery(%v): want error, got nil", mod)
		}
	}
}

func TestMontgomeryExpMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	moduli := []*big.Int{
		big.NewInt(3),
		big.NewInt(65537),
		new(big.Int).SetUint64(0xFFFFFFFFFFFFFFC5), // largest 64-bit prime
		Oakley768.P,
		Oakley1024.P,
		MODP1536.P,
		MODP2048.P,
	}
	// Odd non-prime modulus too: REDC needs oddness, not primality.
	composite := new(big.Int).Mul(big.NewInt(3037000493), big.NewInt(2147483647))
	moduli = append(moduli, composite)

	for _, mod := range moduli {
		mg, err := NewMontgomery(mod)
		if err != nil {
			t.Fatalf("NewMontgomery(%v): %v", mod, err)
		}
		order := new(big.Int).Sub(mod, big.NewInt(1))
		exponents := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			big.NewInt(2),
			big.NewInt(16),
			big.NewInt(65537),
			order,                                  // group order edge
			new(big.Int).Add(order, big.NewInt(1)), // wraps the order
			new(big.Int).Lsh(big.NewInt(1), 255),   // single high bit
		}
		for i := 0; i < 6; i++ {
			e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 256))
			exponents = append(exponents, e)
		}
		bases := []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			big.NewInt(2),
			new(big.Int).Sub(mod, big.NewInt(1)),
			new(big.Int).Add(mod, big.NewInt(5)), // out of range: reduced
		}
		for i := 0; i < 4; i++ {
			b := new(big.Int).Rand(rng, mod)
			bases = append(bases, b)
		}
		for _, base := range bases {
			for _, e := range exponents {
				got := mg.Exp(base, e)
				want := expRef(base, e, mod)
				if got.Cmp(want) != 0 {
					t.Fatalf("mod %d bits: %v^%v: got %v want %v",
						mod.BitLen(), base, e, got, want)
				}
			}
		}
	}
}

func TestMontgomeryExpBlocksMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := Oakley768
	mg, err := NewMontgomery(g.P)
	if err != nil {
		t.Fatal(err)
	}
	e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 144))
	var bases []*big.Int
	for i := 0; i < 17; i++ {
		b := new(big.Int).Rand(rng, g.P)
		bases = append(bases, b)
	}
	got := mg.ExpBlocks(bases, e)
	if len(got) != len(bases) {
		t.Fatalf("len %d want %d", len(got), len(bases))
	}
	for i, b := range bases {
		if want := expRef(b, e, g.P); got[i].Cmp(want) != 0 {
			t.Fatalf("block %d mismatch", i)
		}
	}
	if out := mg.ExpBlocks(nil, e); len(out) != 0 {
		t.Fatalf("empty batch: got %d results", len(out))
	}
}

// TestMontgomeryConcurrent hammers one shared context from many
// goroutines; run under -race this pins the pooled-scratch sharing.
func TestMontgomeryConcurrent(t *testing.T) {
	g := Oakley768
	mg, err := NewMontgomery(g.P)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				base := new(big.Int).Rand(rng, g.P)
				e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 160))
				if mg.Exp(base, e).Cmp(expRef(base, e, g.P)) != 0 {
					t.Errorf("concurrent mismatch (seed %d)", seed)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// FuzzMontgomeryVsBig is the differential fuzzer the acceptance
// criteria require: random moduli in the DLA range (768–2048 bits,
// derived from the fuzz input so even candidates exercise the
// rejection path), random bases, and exponents covering the 0/1/order
// edge cases. Any divergence from big.Int.Exp fails.
func FuzzMontgomeryVsBig(f *testing.F) {
	f.Add(int64(1), []byte{2}, []byte{3}, uint(0))
	f.Add(int64(2), []byte{0xFF, 0x01}, []byte{0}, uint(1))
	f.Add(int64(3), []byte{7, 7, 7}, []byte{1}, uint(2))
	f.Add(int64(4), []byte{}, []byte{0xAB, 0xCD}, uint(3))
	f.Add(int64(5), []byte{0x80}, []byte{0x10, 0x00}, uint(9))
	f.Fuzz(func(t *testing.T, seed int64, baseBytes, expBytes []byte, sel uint) {
		rng := rand.New(rand.NewSource(seed))
		bits := 768 + int(sel%5)*320 // 768, 1088, 1408, 1728, 2048
		mod := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		mod.SetBit(mod, bits-1, 1) // full width
		mg, err := NewMontgomery(mod)
		if mod.Bit(0) == 0 {
			if err == nil {
				t.Fatal("even modulus accepted")
			}
			mod.SetBit(mod, 0, 1)
			if mg, err = NewMontgomery(mod); err != nil {
				t.Fatalf("odd modulus rejected: %v", err)
			}
		} else if err != nil {
			t.Fatalf("odd modulus rejected: %v", err)
		}
		base := new(big.Int).SetBytes(baseBytes)
		e := new(big.Int).SetBytes(expBytes)
		order := new(big.Int).Sub(mod, big.NewInt(1))
		for _, exp := range []*big.Int{e, big.NewInt(0), big.NewInt(1), order} {
			if got, want := mg.Exp(base, exp), expRef(base, exp, mod); got.Cmp(want) != 0 {
				t.Fatalf("mod %d bits, e %d bits: got %v want %v",
					mod.BitLen(), exp.BitLen(), got, want)
			}
		}
		// The fixed-base table over the same modulus must agree too.
		fb := NewFixedBase(base, mod, 256)
		if fb.Covers(e) {
			if got, want := fb.Exp(e), expRef(base, e, mod); got.Cmp(want) != 0 {
				t.Fatalf("fixedbase mod %d bits: got %v want %v", mod.BitLen(), got, want)
			}
		}
	})
}

func BenchmarkMontgomeryExp768(b *testing.B) {
	g := Oakley768
	mg, _ := NewMontgomery(g.P)
	rng := rand.New(rand.NewSource(1))
	base := new(big.Int).Rand(rng, g.P)
	e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 144))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Exp(base, e)
	}
}

func BenchmarkBigExp768(b *testing.B) {
	g := Oakley768
	rng := rand.New(rand.NewSource(1))
	base := new(big.Int).Rand(rng, g.P)
	e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 144))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		new(big.Int).Exp(base, e, g.P)
	}
}
