//go:build race

package mathx

// See race_off_test.go.
const raceEnabled = true
