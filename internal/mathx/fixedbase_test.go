package mathx

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"sync"
	"testing"
)

func TestFixedBaseMatchesExp(t *testing.T) {
	g := Oakley768
	for trial := 0; trial < 8; trial++ {
		base, err := rand.Int(rand.Reader, g.P)
		if err != nil {
			t.Fatal(err)
		}
		fb := NewFixedBase(base, g.P, 256)
		for _, bits := range []int{1, 7, 64, 144, 255, 256} {
			e, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
			if err != nil {
				t.Fatal(err)
			}
			got := fb.Exp(e)
			want := new(big.Int).Exp(base, e, g.P)
			if got == nil || got.Cmp(want) != 0 {
				t.Fatalf("bits=%d: fixed-base %v != Exp %v", bits, got, want)
			}
		}
	}
}

func TestFixedBaseEdgeCases(t *testing.T) {
	p := big.NewInt(101)
	fb := NewFixedBase(big.NewInt(7), p, 16)
	if got := fb.Exp(big.NewInt(0)); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("e=0: got %v, want 1", got)
	}
	if got := fb.Exp(big.NewInt(1)); got.Cmp(big.NewInt(7)) != 0 {
		t.Fatalf("e=1: got %v, want 7", got)
	}
	// An exponent wider than the table is refused, not mis-evaluated.
	wide := new(big.Int).Lsh(big.NewInt(1), 40)
	if fb.Covers(wide) {
		t.Fatal("table claims to cover a 41-bit exponent with a 16-bit table")
	}
	if got := fb.Exp(wide); got != nil {
		t.Fatalf("out-of-range exponent evaluated to %v, want nil", got)
	}
	if fb.Exp(big.NewInt(-3)) != nil {
		t.Fatal("negative exponent must be refused")
	}
	if NewFixedBase(big.NewInt(3), nil, 16) != nil {
		t.Fatal("nil modulus must yield nil table")
	}
}

func TestFixedBaseSmallModulusExhaustive(t *testing.T) {
	p := big.NewInt(2579) // prime
	for base := int64(1); base < 40; base += 3 {
		fb := NewFixedBase(big.NewInt(base), p, 24)
		for e := int64(0); e < 300; e += 7 {
			got := fb.Exp(big.NewInt(e))
			want := new(big.Int).Exp(big.NewInt(base), big.NewInt(e), p)
			if got.Cmp(want) != 0 {
				t.Fatalf("base=%d e=%d: got %v want %v", base, e, got, want)
			}
		}
	}
}

func BenchmarkExpPlain144(b *testing.B)     { benchExp(b, 144, false) }
func BenchmarkExpFixedBase144(b *testing.B) { benchExp(b, 144, true) }
func BenchmarkExpPlain768(b *testing.B)     { benchExp(b, 768, false) }
func BenchmarkExpFixedBase768(b *testing.B) { benchExp(b, 768, true) }

func benchExp(b *testing.B, bits int, fixed bool) {
	g := Oakley768
	base, _ := rand.Int(rand.Reader, g.P)
	e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
	e.SetBit(e, bits-1, 1)
	fb := NewFixedBase(base, g.P, bits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fixed {
			fb.Exp(e)
		} else {
			new(big.Int).Exp(base, e, g.P)
		}
	}
}

// TestFixedBaseEvenModulus pins the big.Int construction path kept for
// even moduli, where the Montgomery engine refuses service.
func TestFixedBaseEvenModulus(t *testing.T) {
	m := big.NewInt(1 << 20) // even
	fb := NewFixedBase(big.NewInt(7), m, 64)
	for e := int64(0); e < 200; e += 13 {
		got := fb.Exp(big.NewInt(e))
		want := new(big.Int).Exp(big.NewInt(7), big.NewInt(e), m)
		if got.Cmp(want) != 0 {
			t.Fatalf("e=%d: got %v want %v", e, got, want)
		}
	}
}

// TestFixedBaseAllocStable pins the pooled-scratch contract: after
// warmup, a fixed-base exponentiation allocates only its result (the
// big.Int header plus its limb array), never per-call scratch.
func TestFixedBaseAllocStable(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	g := Oakley768
	base, _ := rand.Int(rand.Reader, g.P)
	e, _ := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 144))
	e.SetBit(e, 143, 1)
	fb := NewFixedBase(base, g.P, 256)
	fb.Exp(e) // warm the scratch pool
	allocs := testing.AllocsPerRun(50, func() { fb.Exp(e) })
	if allocs > 3 {
		t.Fatalf("fixed-base Exp allocates %.1f objects per call, want <=3 (result only)", allocs)
	}
}

// TestFixedBaseConcurrent hammers one table from many goroutines; under
// -race this pins that the pooled scratch is never shared between
// concurrent evaluations.
func TestFixedBaseConcurrent(t *testing.T) {
	g := Oakley768
	base, _ := rand.Int(rand.Reader, g.P)
	fb := NewFixedBase(base, g.P, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := mrand.New(mrand.NewSource(seed))
			for i := 0; i < 25; i++ {
				e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 160))
				got := fb.Exp(e)
				want := new(big.Int).Exp(base, e, g.P)
				if got.Cmp(want) != 0 {
					t.Errorf("concurrent fixed-base mismatch (seed %d)", seed)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}
