package audit

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func planNames(plans []wirePlan) []string {
	out := make([]string, 0, len(plans))
	for _, p := range plans {
		out = append(out, p.Clause)
	}
	return out
}

func TestDegradePlansShrinksStarToSurvivors(t *testing.T) {
	roster := []string{"P1", "P2", "P3"}
	plans := []wirePlan{{Index: 0, Clause: "*", Nodes: roster, Kind: kindAll}}
	live, unanswerable := degradePlans(plans, roster, []string{"P2"})
	if len(unanswerable) != 0 {
		t.Fatalf("star plan became unanswerable: %v", unanswerable)
	}
	if len(live) != 1 || !reflect.DeepEqual(live[0].Nodes, []string{"P1", "P3"}) {
		t.Fatalf("star plan nodes = %v, want survivors [P1 P3]", live)
	}
}

func TestDegradePlansCullsDeadHolders(t *testing.T) {
	roster := []string{"P1", "P2", "P3"}
	plans := []wirePlan{
		{Index: 0, Clause: "a = 1", Nodes: []string{"P1"}, Kind: kindLocal},
		{Index: 1, Clause: "b = 2", Nodes: []string{"P2"}, Kind: kindLocal},
		{Index: 2, Clause: "a = b", Nodes: []string{"P1", "P2"}, Kind: kindCrossEq},
	}
	live, unanswerable := degradePlans(plans, roster, []string{"P2"})
	if want := []string{"a = 1"}; !reflect.DeepEqual(planNames(live), want) {
		t.Fatalf("live plans = %v, want %v", planNames(live), want)
	}
	if want := []string{"b = 2", "a = b"}; !reflect.DeepEqual(unanswerable, want) {
		t.Fatalf("unanswerable = %v, want %v", unanswerable, want)
	}
	// The surviving plan keeps its original index for session naming.
	if live[0].Index != 0 {
		t.Fatalf("surviving plan index = %d, want 0", live[0].Index)
	}
}

func TestDegradePlansRepicksDeadTTP(t *testing.T) {
	roster := []string{"P1", "P2", "P3", "P4"}
	plans := []wirePlan{
		{Index: 0, Clause: "a < b", Nodes: []string{"P1", "P2"}, Kind: kindCrossCmp, TTP: "P3"},
	}
	live, unanswerable := degradePlans(plans, roster, []string{"P3"})
	if len(unanswerable) != 0 {
		t.Fatalf("comparison became unanswerable: %v", unanswerable)
	}
	if len(live) != 1 || live[0].TTP != "P4" {
		t.Fatalf("TTP = %q, want P4", live[0].TTP)
	}

	// With no live third node left, the clause is unanswerable.
	_, unanswerable = degradePlans(plans, roster[:3], []string{"P3"})
	if want := []string{"a < b"}; !reflect.DeepEqual(unanswerable, want) {
		t.Fatalf("unanswerable = %v, want %v", unanswerable, want)
	}
}

func TestPartialResultErrorNamesClauses(t *testing.T) {
	var err error = &PartialResultError{
		Unanswerable: []string{"b = 2", "a = b"},
		Dead:         []string{"P2"},
	}
	var pr *PartialResultError
	if !errors.As(err, &pr) {
		t.Fatal("errors.As failed to match *PartialResultError")
	}
	msg := err.Error()
	for _, want := range []string{"b = 2", "a = b", "P2"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not name %q", msg, want)
		}
	}
}
