package audit

import (
	"math/big"
	"testing"

	"confaudit/internal/logmodel"
)

// TestCertifiedQuery verifies the trusted-auditing path: every node
// responsible for a subquery countersigns the result, and the auditor
// can verify the certificate against the cluster public keys.
func TestCertifiedQuery(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	glsns, session, cert, err := r.auditor.QueryCertified(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(glsns) != 2 {
		t.Fatalf("glsns = %v", glsns)
	}
	if cert == nil {
		t.Fatal("no certificate returned")
	}
	// The criteria spans P1 (id) and P3 (protocl): both must have signed.
	if len(cert.Ring) != 2 || len(cert.Sigs) != 2 {
		t.Fatalf("cert ring %v, %d sigs", cert.Ring, len(cert.Sigs))
	}
	if err := VerifyResult(r.boot.PeerKeys, session, glsns, cert); err != nil {
		t.Fatalf("VerifyResult: %v", err)
	}
}

func TestCertifiedQuerySingleNode(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	glsns, session, cert, err := r.auditor.QueryCertified(ctx, `C1 > 30`)
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil || len(cert.Ring) != 1 {
		t.Fatalf("cert = %+v", cert)
	}
	if err := VerifyResult(r.boot.PeerKeys, session, glsns, cert); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyResultRejectsForgery(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	glsns, session, cert, err := r.auditor.QueryCertified(ctx, `protocl = "UDP"`)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("tampered result", func(t *testing.T) {
		forged := append([]logmodel.GLSN(nil), glsns...)
		forged = append(forged, 0xdeadbeef)
		if err := VerifyResult(r.boot.PeerKeys, session, forged, cert); err == nil {
			t.Fatal("tampered glsn list verified")
		}
	})
	t.Run("dropped result", func(t *testing.T) {
		if len(glsns) == 0 {
			t.Skip("empty result")
		}
		if err := VerifyResult(r.boot.PeerKeys, session, glsns[:len(glsns)-1], cert); err == nil {
			t.Fatal("truncated glsn list verified")
		}
	})
	t.Run("wrong session", func(t *testing.T) {
		if err := VerifyResult(r.boot.PeerKeys, "other-session", glsns, cert); err == nil {
			t.Fatal("replayed certificate verified under a different session")
		}
	})
	t.Run("mauled signature", func(t *testing.T) {
		bad := &ResultCert{Ring: cert.Ring, Sigs: map[string]*big.Int{}}
		for n, s := range cert.Sigs {
			bad.Sigs[n] = new(big.Int).Add(s, big.NewInt(1))
		}
		if err := VerifyResult(r.boot.PeerKeys, session, glsns, bad); err == nil {
			t.Fatal("mauled signatures verified")
		}
	})
	t.Run("missing signer", func(t *testing.T) {
		bad := &ResultCert{Ring: cert.Ring, Sigs: map[string]*big.Int{}}
		if err := VerifyResult(r.boot.PeerKeys, session, glsns, bad); err == nil {
			t.Fatal("certificate without signatures verified")
		}
	})
	t.Run("nil cert", func(t *testing.T) {
		if err := VerifyResult(r.boot.PeerKeys, session, glsns, nil); err == nil {
			t.Fatal("nil certificate verified")
		}
	})
	t.Run("unknown signer", func(t *testing.T) {
		bad := &ResultCert{Ring: []string{"mallory"}, Sigs: map[string]*big.Int{"mallory": big.NewInt(7)}}
		if err := VerifyResult(r.boot.PeerKeys, session, glsns, bad); err == nil {
			t.Fatal("unknown signer verified")
		}
	})
}
