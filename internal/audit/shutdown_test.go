package audit

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"confaudit/internal/cluster"
	"confaudit/internal/transport"
)

// awaitGoroutines polls until the live goroutine count falls back to
// the baseline (with a small tolerance for runtime helpers).
func awaitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeReleasesGoroutinesOnCancel accounts for every goroutine the
// audit service spawns: after driving a query through Serve and then
// cancelling the context, the process must return to its baseline
// goroutine count — no leaked handler, coordinator, or executor loops.
func TestServeReleasesGoroutinesOnCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()

	boot := sharedBootstrap(t)
	net := transport.NewMemNetwork()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var nodes []*cluster.Node
	for _, id := range boot.Roster {
		ep, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		mb := transport.NewMailbox(ep)
		node, err := cluster.New(boot.NodeConfig(id), mb)
		if err != nil {
			t.Fatal(err)
		}
		node.Start(ctx)
		wg.Add(1)
		go func(n *cluster.Node) {
			defer wg.Done()
			Serve(ctx, n)
		}(node)
		nodes = append(nodes, node)
	}

	// Drive a (denied) query so coordinator handler goroutines spin up.
	aep, err := net.Endpoint("aud-shutdown")
	if err != nil {
		t.Fatal(err)
	}
	amb := transport.NewMailbox(aep)
	auditor := NewAuditor(amb, boot.Roster[0], "no-such-ticket")
	qctx, qcancel := context.WithTimeout(ctx, 30*time.Second)
	if _, err := auditor.Query(qctx, "*"); err == nil {
		t.Fatal("query under unregistered ticket succeeded")
	}
	qcancel()

	cancel()
	net.Close() //nolint:errcheck
	wg.Wait()
	for _, n := range nodes {
		n.Wait()
	}
	amb.Close() //nolint:errcheck
	awaitGoroutines(t, baseline)
}
