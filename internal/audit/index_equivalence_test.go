package audit

import (
	"testing"

	"confaudit/internal/logmodel"
)

// TestIndexScanEquivalence runs every query shape through the full
// distributed query path twice — once answering equality predicates
// from the nodes' attribute indexes, once with the indexes disabled so
// every clause takes the scan path — and requires identical outcomes,
// including identical error behaviour. The shapes cover plain and
// reversed equality, int/float constant aliasing, same-node and
// cross-node conjunctions, ranges, disjunction, negation, wildcard,
// cross-attribute predicates, unknown attributes, and cross-class
// comparisons that must surface errors.
func TestIndexScanEquivalence(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)

	setIndexes := func(off bool) {
		for _, n := range r.nodes {
			n.SetIndexDisabled(off)
		}
	}

	criteria := []string{
		`id = "U1"`,                             // string equality
		`C1 = 20`,                               // int equality
		`C1 = 20.0`,                             // float constant matching stored ints
		`C2 = 23.45`,                            // float equality
		`id = "U9"`,                             // equality with no matches
		`Tid = "T1100265" AND C3 = "signature"`, // same-node equality conjunction
		`protocl = "UDP" AND id = "U1"`,         // cross-node equality conjunction
		`C1 > 30`,                               // range: scan path
		`Tid = "T1100265" AND C1 < 30 AND id = "U1"`, // mixed equality + range
		`id = "U3" OR C1 = 20`,                       // disjunction
		`NOT (protocl = "UDP")`,                      // negation normalizes to !=
		`*`,                                          // wildcard
		`id = C3`,                                    // cross-attribute equality
		`C1 < C2`,                                    // cross-attribute range
		`id = 5`,                                     // cross-class: must error in both modes
		`C1 = "x"`,                                   // cross-class the other way
		`nosuchattr = 1`,                             // unknown attribute
	}

	for _, crit := range criteria {
		t.Run(crit, func(t *testing.T) {
			setIndexes(false)
			indexed, idxErr := r.auditor.Query(ctx, crit)
			setIndexes(true)
			scanned, scanErr := r.auditor.Query(ctx, crit)
			setIndexes(false)
			if (idxErr == nil) != (scanErr == nil) {
				t.Fatalf("error divergence: indexed err=%v, scanned err=%v", idxErr, scanErr)
			}
			if idxErr != nil {
				return
			}
			assertGLSNs(t, indexed, scanned)
		})
	}

	// Aggregates ride the same match-set machinery.
	setIndexes(false)
	aggIdx, err := r.auditor.Aggregate(ctx, `protocl = "UDP"`, AggSum, "C1")
	if err != nil {
		t.Fatal(err)
	}
	setIndexes(true)
	aggScan, err := r.auditor.Aggregate(ctx, `protocl = "UDP"`, AggSum, "C1")
	if err != nil {
		t.Fatal(err)
	}
	setIndexes(false)
	if aggIdx != aggScan {
		t.Fatalf("aggregate divergence: indexed %v, scanned %v", aggIdx, aggScan)
	}
	if want := float64(20 + 34 + 45); aggIdx != want {
		t.Fatalf("SUM(C1) over UDP rows = %v, want %v", aggIdx, want)
	}
}

// TestIndexMaintainedAcrossMutation checks that deletes keep the index
// consistent with the store through the full query path.
func TestIndexMaintainedAcrossMutation(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)

	got, err := r.auditor.Query(ctx, `protocl = "UDP"`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(0, 1, 2))

	// Tamper one UDP row's protocol; the index must follow the new value.
	for _, n := range r.nodes {
		n.TamperFragment(logmodel.GLSN(0x139aef79), "protocl", logmodel.String("ICMP"))
	}
	got, err = r.auditor.Query(ctx, `protocl = "UDP"`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(0, 2))
	got, err = r.auditor.Query(ctx, `protocl = "ICMP"`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(1))
}
