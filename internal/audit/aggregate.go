package audit

import (
	"fmt"
	"math"

	"confaudit/internal/logmodel"
)

// fragmentReader is the narrow store surface aggregation needs.
type fragmentReader interface {
	Fragment(logmodel.GLSN) (logmodel.Fragment, bool)
}

// computeAggregate folds an aggregate over the named attribute of the
// matched records, on the attribute's owner node. Only the final scalar
// leaves the node — the confidential-statistics flow of the paper's
// secret-counting reference [7].
func computeAggregate(node fragmentReader, kind AggKind, attr logmodel.Attr, glsns []string) (float64, error) {
	var (
		sum   float64
		count int
		maxV  = math.Inf(-1)
		minV  = math.Inf(1)
	)
	for _, s := range glsns {
		g, err := logmodel.ParseGLSN(s)
		if err != nil {
			return 0, err
		}
		frag, ok := node.Fragment(g)
		if !ok {
			continue
		}
		v, ok := frag.Values[attr]
		if !ok {
			continue
		}
		var f float64
		switch v.Kind {
		case logmodel.KindInt:
			f = float64(v.I)
		case logmodel.KindFloat:
			f = v.F
		default:
			// Counting does not need a numeric value.
			if kind == AggCount {
				count++
				continue
			}
			return 0, fmt.Errorf("audit: aggregate %q over non-numeric attribute %q", kind, attr)
		}
		count++
		sum += f
		if f > maxV {
			maxV = f
		}
		if f < minV {
			minV = f
		}
	}
	switch kind {
	case AggCount:
		return float64(count), nil
	case AggSum:
		return sum, nil
	case AggAvg:
		if count == 0 {
			return 0, nil
		}
		return sum / float64(count), nil
	case AggMax:
		if count == 0 {
			return 0, fmt.Errorf("audit: max over empty match set")
		}
		return maxV, nil
	case AggMin:
		if count == 0 {
			return 0, fmt.Errorf("audit: min over empty match set")
		}
		return minV, nil
	default:
		return 0, fmt.Errorf("audit: unknown aggregate %q", kind)
	}
}
