package audit

import (
	"testing"

	"confaudit/internal/logmodel"
)

// fragMap is a minimal fragmentReader for unit tests.
type fragMap map[logmodel.GLSN]logmodel.Fragment

func (m fragMap) Fragment(g logmodel.GLSN) (logmodel.Fragment, bool) {
	f, ok := m[g]
	return f, ok
}

func TestComputeAggregateUnit(t *testing.T) {
	store := fragMap{
		1: {GLSN: 1, Values: map[logmodel.Attr]logmodel.Value{"x": logmodel.Int(10)}},
		2: {GLSN: 2, Values: map[logmodel.Attr]logmodel.Value{"x": logmodel.Float(2.5)}},
		3: {GLSN: 3, Values: map[logmodel.Attr]logmodel.Value{"y": logmodel.Int(99)}}, // no x
	}
	glsns := []string{"1", "2", "3"}
	cases := []struct {
		kind AggKind
		want float64
	}{
		{AggCount, 2}, // only records carrying x count
		{AggSum, 12.5},
		{AggMax, 10},
		{AggMin, 2.5},
		{AggAvg, 6.25},
	}
	for _, tc := range cases {
		got, err := computeAggregate(store, tc.kind, "x", glsns)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if got != tc.want {
			t.Fatalf("%s = %v, want %v", tc.kind, got, tc.want)
		}
	}
}

func TestComputeAggregateEdgeCases(t *testing.T) {
	store := fragMap{
		1: {GLSN: 1, Values: map[logmodel.Attr]logmodel.Value{"s": logmodel.String("text")}},
	}
	// Non-numeric attribute.
	if _, err := computeAggregate(store, AggSum, "s", []string{"1"}); err == nil {
		t.Fatal("sum over string accepted")
	}
	// Empty match set: max/min error, sum/avg/count are zero.
	if _, err := computeAggregate(store, AggMax, "x", nil); err == nil {
		t.Fatal("max over empty set accepted")
	}
	if _, err := computeAggregate(store, AggMin, "x", nil); err == nil {
		t.Fatal("min over empty set accepted")
	}
	for _, kind := range []AggKind{AggSum, AggAvg, AggCount} {
		got, err := computeAggregate(store, kind, "x", nil)
		if err != nil || got != 0 {
			t.Fatalf("%s over empty set = %v, %v", kind, got, err)
		}
	}
	// Bad glsn string.
	if _, err := computeAggregate(store, AggSum, "x", []string{"zz!"}); err == nil {
		t.Fatal("bad glsn accepted")
	}
	// Unknown kind.
	if _, err := computeAggregate(store, AggKind("median"), "x", []string{"1"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Missing records are skipped, not errors.
	got, err := computeAggregate(store, AggCount, "s", []string{"1", "2", "3"})
	if err != nil || got != 1 {
		t.Fatalf("count with missing records = %v, %v", got, err)
	}
}
