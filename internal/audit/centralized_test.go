package audit

import (
	"math"
	"testing"

	"confaudit/internal/logmodel"
)

func loadCentralized(t *testing.T) *Centralized {
	t.Helper()
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCentralized()
	for _, rec := range ex.Records {
		c.Store(rec)
	}
	return c
}

func TestCentralizedQuery(t *testing.T) {
	c := loadCentralized(t)
	got, err := c.Query(`protocl = "UDP" AND id = "U1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0x139aef78 || got[1] != 0x139aef80 {
		t.Fatalf("got %v", got)
	}
	all, err := c.Query("*")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("star query = %v", all)
	}
	if _, err := c.Query(`bad ~`); err == nil {
		t.Fatal("malformed criteria accepted")
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCentralizedAggregate(t *testing.T) {
	c := loadCentralized(t)
	sum, err := c.Aggregate("*", AggSum, "C1")
	if err != nil {
		t.Fatal(err)
	}
	if sum != 170 {
		t.Fatalf("sum = %v, want 170", sum)
	}
	n, err := c.Aggregate(`protocl = "TCP"`, AggCount, "")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %v, want 2", n)
	}
	avg, err := c.Aggregate("*", AggAvg, "C1")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avg-34) > 1e-9 {
		t.Fatalf("avg = %v, want 34", avg)
	}
}

// TestCentralizedMatchesDLASemantics cross-checks the two
// architectures' answers on the same criteria set — the semantic
// equivalence behind the Figure 1 vs Figure 2 benchmark comparison.
func TestCentralizedMatchesDLASemantics(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// Rebuild the centralized store under the same sequential glsns the
	// DLA sequencer assigned (the paper's printed glsns skip values).
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	c := NewCentralized()
	for i, rec := range ex.Records {
		r := rec.Clone()
		r.GLSN = logmodel.GLSN(0x139aef78 + uint64(i))
		c.Store(r)
	}
	for _, criteria := range []string{
		`protocl = "UDP"`,
		`C1 > 30`,
		`protocl = "UDP" AND id = "U1"`,
		`id = "U3" OR C1 = 20`,
		`NOT (protocl = "UDP")`,
		"*",
	} {
		want, err := c.Query(criteria)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.auditor.Query(ctx, criteria)
		if err != nil {
			t.Fatalf("DLA %q: %v", criteria, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%q: DLA %v vs centralized %v", criteria, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q: DLA %v vs centralized %v", criteria, got, want)
			}
		}
	}
}
