package audit

import (
	"fmt"
	"strings"

	"confaudit/internal/logmodel"
	"confaudit/internal/resilience"
)

// Degraded-mode query execution. When the coordinator's failure
// detector reports dead roster nodes, dispatching a plan that involves
// one of them would hang until the query timeout. Instead the
// coordinator culls those subqueries up front: the remaining plans run
// over the survivors and the auditor receives the partial glsn list
// together with the clauses that could not be answered, as a typed
// PartialResultError. Clauses whose every involved node is alive are
// unaffected, so queries that never touch a dead node stay exact.

// HealthViewer is implemented by cluster nodes running a failure
// detector; the coordinator consults it to degrade plans. NodeState
// implementations without one (tests, single-node tools) simply never
// degrade.
type HealthViewer interface {
	HealthView() resilience.HealthView
}

// PartialResultError reports a query that completed in degraded mode.
// GLSNs is the conjunction over the answerable clauses only — a
// superset of the exact answer — and Unanswerable names the clauses
// whose evaluation required a dead node. Quarantined names glsn extents
// a participating node's storage recovery refused to serve (CRC or
// accumulator-checkpoint mismatch): records in those extents may be
// missing from the answer even though every clause was evaluated.
type PartialResultError struct {
	GLSNs        []logmodel.GLSN
	Unanswerable []string
	Dead         []string
	Quarantined  []string
}

func (e *PartialResultError) Error() string {
	msg := "audit: partial result"
	if len(e.Unanswerable) > 0 {
		msg += fmt.Sprintf(": unanswerable clauses [%s] (dead nodes: %s)",
			strings.Join(e.Unanswerable, "; "), strings.Join(e.Dead, ", "))
	}
	if len(e.Quarantined) > 0 {
		msg += fmt.Sprintf(": quarantined storage [%s]", strings.Join(e.Quarantined, "; "))
	}
	return msg
}

// degradePlans splits plans into those executable with the given nodes
// dead and the clauses of those that are not. Plans over the whole
// roster ("*") shrink to the survivors; cross-comparison plans whose
// blind TTP died are re-pointed at a live third node; any plan whose
// holder died is unanswerable.
func degradePlans(plans []wirePlan, roster, dead []string) (live []wirePlan, unanswerable []string) {
	deadSet := make(map[string]struct{}, len(dead))
	for _, d := range dead {
		deadSet[d] = struct{}{}
	}
	liveRoster := make([]string, 0, len(roster))
	for _, n := range roster {
		if _, ok := deadSet[n]; !ok {
			liveRoster = append(liveRoster, n)
		}
	}
	for _, p := range plans {
		if p.Kind == kindAll {
			// "*" intersects every node's glsn set; survivors still hold
			// every record's fragment, so the survivor intersection is
			// exact.
			var alive []string
			for _, n := range p.Nodes {
				if _, ok := deadSet[n]; !ok {
					alive = append(alive, n)
				}
			}
			if len(alive) == 0 {
				unanswerable = append(unanswerable, p.Clause)
				continue
			}
			p.Nodes = alive
			live = append(live, p)
			continue
		}
		holderDead := false
		for _, n := range p.Nodes {
			if _, ok := deadSet[n]; ok {
				holderDead = true
				break
			}
		}
		if holderDead {
			// The dead node holds attribute values no one else has; the
			// clause cannot be evaluated without it.
			unanswerable = append(unanswerable, p.Clause)
			continue
		}
		if p.TTP != "" {
			if _, ok := deadSet[p.TTP]; ok {
				ttp := pickTTP(liveRoster, p.Nodes)
				if ttp == "" {
					unanswerable = append(unanswerable, p.Clause)
					continue
				}
				p.TTP = ttp
			}
		}
		live = append(live, p)
	}
	return live, unanswerable
}
