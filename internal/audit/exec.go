package audit

import (
	"context"
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"
	"sync"
	"time"

	"confaudit/internal/logmodel"
	"confaudit/internal/metrics"
	"confaudit/internal/query"
	"confaudit/internal/smc"
	"confaudit/internal/smc/compare"
	"confaudit/internal/smc/intersect"
	"confaudit/internal/smc/union"
	"confaudit/internal/telemetry"
	"confaudit/internal/ticket"
	"confaudit/internal/transport"
)

// errQueryFailed classifies replies that carry only a rendered error
// string; the span records the coarse class, never the text.
var errQueryFailed = fmt.Errorf("audit: query failed")

// queryTimeout bounds one distributed query execution end to end.
const queryTimeout = 2 * time.Minute

// cmpMaxAbs bounds the absolute value of order-encoded attributes in
// cross comparisons.
var cmpMaxAbs = new(big.Int).Lsh(big.NewInt(1), 62)

// Serve runs the node-side audit service: a coordinator loop accepting
// auditor queries and an executor loop joining distributed plans. It
// blocks until ctx is cancelled or the mailbox closes.
func Serve(ctx context.Context, node NodeState) {
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		serveQueries(ctx, node)
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		serveExec(ctx, node)
	}()
	<-done
	<-done
}

func serveQueries(ctx context.Context, node NodeState) {
	mb := node.Mailbox()
	for {
		msg, err := mb.ExpectType(ctx, MsgQuery)
		if err != nil {
			return
		}
		go handleQuery(ctx, node, msg)
	}
}

func serveExec(ctx context.Context, node NodeState) {
	mb := node.Mailbox()
	for {
		msg, err := mb.ExpectType(ctx, MsgExec)
		if err != nil {
			return
		}
		go handleExec(ctx, node, msg)
	}
}

// handleQuery is the coordinator role for one query.
func handleQuery(ctx context.Context, node NodeState, msg transport.Message) {
	ctx, cancel := context.WithTimeout(ctx, queryTimeout)
	defer cancel()
	mb := node.Mailbox()
	start := time.Now()
	// The auditor's submit span (if any) is the remote parent, so the
	// coordinator's tree stitches under the client's in a merged trace.
	ctx = telemetry.WithRemoteParent(ctx, msg.TraceSpan)
	qsp, ctx := telemetry.StartSpan(ctx, msg.Session, node.ID(), "audit.query")
	qsp.SetPeer(msg.From)
	reply := func(res resultBody) {
		telemetry.M.Histogram(telemetry.HistAuditQuery).Observe(time.Since(start))
		if res.Error != "" {
			qsp.End(errQueryFailed)
		} else {
			qsp.SetCount(len(res.GLSNs)).End(nil)
			recordResultDisclosures(msg.From, msg.Session, node.ID(), &res)
		}
		out, err := transport.NewMessage(msg.From, MsgResult, msg.Session, res)
		if err != nil {
			return
		}
		mb.Send(ctx, out) //nolint:errcheck // auditor timeout covers loss
	}

	var body queryBody
	if err := transport.Unmarshal(msg.Payload, &body); err != nil {
		reply(resultBody{Error: err.Error()})
		return
	}
	if err := node.TicketAllows(body.TicketID, ticket.OpRead); err != nil {
		reply(resultBody{Error: fmt.Errorf("%w: %v", ErrDenied, err).Error()})
		return
	}
	part := node.Partition()
	psp, _ := telemetry.StartSpan(ctx, msg.Session, node.ID(), "audit.parse_plan")
	planStart := time.Now()
	plans, norm, err := buildPlans(body.Criteria, part)
	telemetry.M.Histogram(telemetry.HistAuditPlan).Since(planStart)
	psp.SetCount(len(plans)).End(err)
	if err != nil {
		reply(resultBody{Error: err.Error()})
		return
	}
	telemetry.M.Counter(telemetry.CtrSubqueries).Add(int64(len(plans)))
	// Score the query's confidentiality at dispatch time: C_auditing
	// (eq. 11) exactly from the normalized criterion, C_query (eq. 12)
	// against the full-schema C_store estimate — the record-independent
	// stand-in available before any record is matched. The querier's
	// ledger accumulates the spend and trips the leak alarm when a
	// configured budget is exceeded.
	cAud := 0.0
	if norm != nil {
		cAud = metrics.Auditing(norm, part)
	}
	telemetry.L.RecordQuery(msg.From, msg.Session, cAud, cAud*metrics.StoreFullSchema(part))
	// Degraded mode: cull subqueries that cannot complete because a node
	// they involve is dead, so the query answers over the survivors
	// instead of hanging until the timeout.
	var unanswerable, deadNodes []string
	if hv, ok := node.(HealthViewer); ok {
		if dead := hv.HealthView().Dead(); len(dead) > 0 {
			deadNodes = dead
			plans, unanswerable = degradePlans(plans, part.Nodes(), dead)
			outcome := "ok"
			if len(unanswerable) > 0 {
				outcome = "partial"
			}
			telemetry.F.Record(telemetry.FlightEvent{
				Kind: telemetry.FlightDegraded, Node: node.ID(), Peer: dead[0],
				Count: len(unanswerable), Outcome: outcome,
			})
		}
	}
	exec := execBody{
		Plans:       plans,
		Coordinator: node.ID(),
		Querier:     msg.From,
	}
	if body.AggKind != "" {
		switch body.AggKind {
		case AggCount, AggSum, AggMax, AggMin, AggAvg:
		default:
			reply(resultBody{Error: fmt.Sprintf("audit: unknown aggregate %q", body.AggKind)})
			return
		}
		if len(unanswerable) > 0 {
			// A partial match set would silently skew the statistic;
			// refuse rather than mislead.
			reply(resultBody{Error: fmt.Sprintf(
				"audit: aggregate unavailable in degraded mode: unanswerable clauses %q (dead nodes: %s)",
				unanswerable, strings.Join(deadNodes, ", "))})
			return
		}
		exec.AggKind = body.AggKind
		exec.AggAttr = body.AggAttr
		if body.AggKind != AggCount {
			owner := part.Owner(body.AggAttr)
			if owner == "" {
				reply(resultBody{Error: fmt.Sprintf("audit: aggregate attribute %q not supported by any node", body.AggAttr)})
				return
			}
			if smc.Contains(deadNodes, owner) {
				reply(resultBody{Error: fmt.Sprintf("audit: aggregate attribute %q held by dead node %s", body.AggAttr, owner)})
				return
			}
			exec.AggOwner = owner
		}
	}
	if len(plans) == 0 {
		// Every clause involved a dead node; nothing to dispatch.
		reply(resultBody{Unanswerable: unanswerable, Dead: deadNodes})
		return
	}
	// Final conjunction ring: one responsible node per subquery.
	ringSet := make(map[string]struct{})
	for i := range plans {
		ringSet[plans[i].responsible()] = struct{}{}
	}
	exec.FinalRing = make([]string, 0, len(ringSet))
	for n := range ringSet {
		exec.FinalRing = append(exec.FinalRing, n)
	}
	sort.Strings(exec.FinalRing)
	exec.FinalReceiver = exec.FinalRing[0]

	// Dispatch to every involved node.
	involved := make(map[string]struct{})
	for i := range plans {
		for _, n := range plans[i].involved() {
			involved[n] = struct{}{}
		}
	}
	if exec.AggOwner != "" {
		involved[exec.AggOwner] = struct{}{}
	}
	// Dispatch concurrently: one slow or unreachable node must not delay
	// the others' plan start. The channel is buffered to the fan-out so
	// a fail-fast return leaks no goroutine.
	dsp, dctx := telemetry.StartSpan(ctx, msg.Session, node.ID(), "audit.dispatch")
	dsp.SetCount(len(involved))
	dispatchStart := time.Now()
	dispatchErr := make(chan error, len(involved))
	for n := range involved {
		go func(n string) {
			out, err := transport.NewMessage(n, MsgExec, msg.Session, exec)
			if err != nil {
				dispatchErr <- err
				return
			}
			// dctx carries the dispatch span, so each executor's exec
			// tree stitches under it in the merged cluster trace.
			dispatchErr <- mb.Send(dctx, out)
		}(n)
	}
	for range involved {
		if err := <-dispatchErr; err != nil {
			telemetry.M.Histogram(telemetry.HistAuditDispatch).Since(dispatchStart)
			dsp.End(err)
			reply(resultBody{Error: err.Error()})
			return
		}
	}
	telemetry.M.Histogram(telemetry.HistAuditDispatch).Since(dispatchStart)
	dsp.End(nil)

	// Await the final verdict (or the first reported error) and relay.
	fin, err := mb.Expect(ctx, MsgFinal, msg.Session)
	if err != nil {
		reply(resultBody{Error: fmt.Sprintf("audit: query timed out or failed: %v", err)})
		return
	}
	var final finalBody
	if err := transport.Unmarshal(fin.Payload, &final); err != nil {
		reply(resultBody{Error: err.Error()})
		return
	}
	if final.Error != "" {
		reply(resultBody{Error: final.Error})
		return
	}
	// Fold in quarantined storage: the ring's reports plus the
	// coordinator's own (it may not sit in the final ring).
	quarantined := mergeQuarantine(final.Quarantined, quarantineOf(node))
	if final.IsAgg {
		if len(quarantined) > 0 {
			// An aggregate over history with quarantined extents would
			// silently under-count; refuse rather than mislead, mirroring
			// the degraded-mode refusal.
			reply(resultBody{Error: fmt.Sprintf(
				"audit: aggregate unavailable: quarantined storage [%s]",
				strings.Join(quarantined, "; "))})
			return
		}
		reply(resultBody{Agg: final.Agg})
		return
	}
	sort.Strings(final.GLSNs)
	reply(resultBody{GLSNs: final.GLSNs, Cert: final.Cert, Unanswerable: unanswerable, Dead: deadNodes, Quarantined: quarantined})
}

// mergeQuarantine unions quarantine reports, deduplicated and sorted.
func mergeQuarantine(lists ...[]string) []string {
	seen := make(map[string]struct{})
	var out []string
	for _, l := range lists {
		for _, q := range l {
			if _, ok := seen[q]; ok {
				continue
			}
			seen[q] = struct{}{}
			out = append(out, q)
		}
	}
	sort.Strings(out)
	return out
}

// recordResultDisclosures files the secondary information a completed
// query reveals to the auditor: the result count and, for glsn results,
// the extent (max−min+1) of the matched glsn range. Counts and
// orderings only — never record contents.
func recordResultDisclosures(querier, session, self string, res *resultBody) {
	telemetry.L.RecordDisclosure(querier, session, self,
		telemetry.DiscResultCount, "", int64(len(res.GLSNs)))
	var lo, hi logmodel.GLSN
	n := 0
	for _, s := range res.GLSNs {
		g, err := logmodel.ParseGLSN(s)
		if err != nil {
			continue
		}
		if n == 0 || g < lo {
			lo = g
		}
		if n == 0 || g > hi {
			hi = g
		}
		n++
	}
	if n > 0 {
		telemetry.L.RecordDisclosure(querier, session, self,
			telemetry.DiscGLSNExtent, "", int64(hi-lo)+1)
	}
}

// handleExec is one node's participation in a distributed plan.
func handleExec(ctx context.Context, node NodeState, msg transport.Message) {
	ctx, cancel := context.WithTimeout(ctx, queryTimeout)
	defer cancel()
	// Stitch this node's exec tree under the coordinator's dispatch span.
	ctx = telemetry.WithRemoteParent(ctx, msg.TraceSpan)
	var body execBody
	if err := transport.Unmarshal(msg.Payload, &body); err != nil {
		return
	}
	if err := execute(ctx, node, msg.Session, &body); err != nil {
		// Report the failure to the coordinator so the auditor gets a
		// verdict instead of a timeout.
		fail := finalBody{Error: err.Error()}
		out, mErr := transport.NewMessage(body.Coordinator, MsgFinal, msg.Session, fail)
		if mErr == nil {
			node.Mailbox().Send(ctx, out) //nolint:errcheck
		}
	}
}

// execute runs every role this node has in the plan, in ascending plan
// order (the global order that keeps multi-node subprotocols free of
// cross-plan deadlock).
func execute(ctx context.Context, node NodeState, session string, body *execBody) (err error) {
	self := node.ID()
	mb := node.Mailbox()
	defer telemetry.M.Histogram(telemetry.HistAuditExec).Since(time.Now())
	esp, ctx := telemetry.StartSpan(ctx, session, self, "audit.exec")
	defer func() { esp.End(err) }()

	// results holds the glsn sets this node is responsible for.
	var mySets []map[string]struct{}
	ranPlan := false
	for i := range body.Plans {
		plan := &body.Plans[i]
		if !smc.Contains(plan.involved(), self) {
			continue
		}
		ranPlan = true
		// The subquery span is named by plan kind and filed under the
		// /sqN sub-session — index and kind only, never the clause.
		sqSp, sqCtx := telemetry.StartSpan(ctx,
			session+"/sq"+fmt.Sprint(plan.Index), self, "audit.subquery."+string(plan.Kind))
		set, responsible, err := executePlan(sqCtx, node, session, plan)
		sqSp.SetCount(len(set)).End(err)
		if err != nil {
			return fmt.Errorf("subquery %d (%s): %w", plan.Index, plan.Kind, err)
		}
		if responsible {
			// The responsible holder learned this subquery's result-set
			// cardinality — Definition 1 secondary information, charged
			// to the querier's ledger.
			telemetry.L.RecordDisclosure(body.Querier, session, self,
				telemetry.DiscSetCardinality, string(plan.Kind), int64(len(set)))
			mySets = append(mySets, set)
		}
	}

	inFinalRing := smc.Contains(body.FinalRing, self)
	var finalSet map[string]struct{}
	if inFinalRing {
		// Conjunction of this node's own subquery results. Every ring
		// member receives the final set so it can countersign the
		// result (trusted auditing via majority certification).
		myInput := intersectSets(mySets)
		if len(body.FinalRing) > 1 {
			elems := make([][]byte, 0, len(myInput))
			for g := range myInput {
				elems = append(elems, []byte(g))
			}
			cfg := intersect.Config{
				Group:     node.Group(),
				Ring:      body.FinalRing,
				Receivers: body.FinalRing,
				Session:   session + "/final",
			}
			res, err := intersect.Run(ctx, mb, cfg, elems)
			if err != nil {
				return fmt.Errorf("final conjunction: %w", err)
			}
			finalSet = make(map[string]struct{}, len(res.Plaintext))
			for _, el := range res.Plaintext {
				finalSet[string(el)] = struct{}{}
			}
			// Every ring member receives the intersection, so each one
			// learned its size.
			telemetry.L.RecordDisclosure(body.Querier, session, self,
				telemetry.DiscIntersection, "", int64(len(finalSet)))
		} else {
			finalSet = myInput
		}
	}

	// Result certification: every ring node signs the digest of the
	// final glsn list; non-receivers ship their signatures to the
	// receiver, which assembles the certificate. The signature message
	// piggybacks each node's quarantined storage extents, so a node that
	// came up degraded taints the result with exactly the glsn ranges it
	// could not serve.
	var cert *ResultCert
	var quar []string
	if inFinalRing {
		glsns := sortedKeys(finalSet)
		sig, err := node.Sign(certStatement(session, glsns))
		if err != nil {
			return fmt.Errorf("certifying result: %w", err)
		}
		if self != body.FinalReceiver {
			out, err := transport.NewMessage(body.FinalReceiver, MsgSig, session,
				sigBody{Sig: sig, Quarantined: quarantineOf(node)})
			if err != nil {
				return err
			}
			if err := mb.Send(ctx, out); err != nil {
				return err
			}
		} else {
			quar = append(quar, quarantineOf(node)...)
			cert = &ResultCert{
				Ring: append([]string(nil), body.FinalRing...),
				Sigs: map[string]*big.Int{self: sig},
			}
			// Collect until every ring signature AND every involved
			// node's quarantine report is in: nodes outside the ring
			// still contributed subquery answers (e.g. the wildcard glsn
			// intersection), so a degraded one silently shrinks the
			// result unless its extents ride back here too.
			reporters := planReporters(body.Plans)
			seen := map[string]bool{self: true}
			for len(cert.Sigs) < len(body.FinalRing) || len(seen) < len(reporters) {
				msg, err := mb.Expect(ctx, MsgSig, session)
				if err != nil {
					return fmt.Errorf("collecting result signatures: %w", err)
				}
				if !smc.Contains(reporters, msg.From) {
					continue
				}
				var sb sigBody
				if err := transport.Unmarshal(msg.Payload, &sb); err != nil {
					return err
				}
				if smc.Contains(body.FinalRing, msg.From) && sb.Sig != nil {
					cert.Sigs[msg.From] = sb.Sig
				}
				if !seen[msg.From] {
					seen[msg.From] = true
					quar = append(quar, sb.Quarantined...)
				}
			}
			sort.Strings(quar)
		}
	} else if ranPlan {
		// Involved but outside the certification ring: report this
		// node's quarantined extents to the receiver (always, even when
		// empty — the receiver counts one report per involved node).
		out, err := transport.NewMessage(body.FinalReceiver, MsgSig, session,
			sigBody{Quarantined: quarantineOf(node)})
		if err != nil {
			return err
		}
		if err := mb.Send(ctx, out); err != nil {
			return err
		}
	}

	// Result delivery.
	if self == body.FinalReceiver {
		glsns := sortedKeys(finalSet)
		switch {
		case body.AggKind == AggCount:
			return sendFinal(ctx, mb, body.Coordinator, session, finalBody{IsAgg: true, Agg: float64(len(glsns)), Quarantined: quar})
		case body.AggKind != "":
			if self == body.AggOwner {
				val, err := computeAggregate(node, body.AggKind, body.AggAttr, glsns)
				if err != nil {
					return err
				}
				return sendFinal(ctx, mb, body.Coordinator, session, finalBody{IsAgg: true, Agg: val, Quarantined: quar})
			}
			out, err := transport.NewMessage(body.AggOwner, MsgAggReq, session, finalBody{GLSNs: glsns, Quarantined: quar})
			if err != nil {
				return err
			}
			return mb.Send(ctx, out)
		default:
			return sendFinal(ctx, mb, body.Coordinator, session, finalBody{GLSNs: glsns, Cert: cert, Quarantined: quar})
		}
	}

	// Aggregate owner that is not the final receiver: await the matched
	// glsn set and fold the aggregate.
	if body.AggKind != "" && body.AggKind != AggCount && self == body.AggOwner {
		msg, err := mb.Expect(ctx, MsgAggReq, session)
		if err != nil {
			return fmt.Errorf("awaiting aggregate request: %w", err)
		}
		var req finalBody
		if err := transport.Unmarshal(msg.Payload, &req); err != nil {
			return err
		}
		val, err := computeAggregate(node, body.AggKind, body.AggAttr, req.GLSNs)
		if err != nil {
			return err
		}
		// The owner folds the aggregate over its own store, so its own
		// quarantine taints the value alongside whatever the receiver
		// already collected.
		return sendFinal(ctx, mb, body.Coordinator, session, finalBody{
			IsAgg: true, Agg: val,
			Quarantined: mergeQuarantine(req.Quarantined, quarantineOf(node)),
		})
	}
	return nil
}

// planReporters is the union of every plan's involved nodes — the set
// the final receiver expects exactly one quarantine report (or ring
// signature) from. Derived from the dispatched plans on both sides so
// sender and collector always agree. The aggregate owner is excluded:
// when it sits outside every plan it never runs the plan loop, and its
// quarantine is merged on the MsgAggReq path instead.
func planReporters(plans []wirePlan) []string {
	set := make(map[string]struct{})
	for i := range plans {
		for _, n := range plans[i].involved() {
			set[n] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sendFinal(ctx context.Context, mb *transport.Mailbox, coordinator, session string, body finalBody) error {
	out, err := transport.NewMessage(coordinator, MsgFinal, session, body)
	if err != nil {
		return err
	}
	return mb.Send(ctx, out)
}

// executePlan runs one subquery role. It returns the resulting glsn set
// and whether this node is the set's responsible holder.
func executePlan(ctx context.Context, node NodeState, session string, plan *wirePlan) (map[string]struct{}, bool, error) {
	self := node.ID()
	sqSession := session + "/sq" + fmt.Sprint(plan.Index)
	responsible := plan.responsible() == self

	switch plan.Kind {
	case kindAll:
		set := make(map[string]struct{})
		for _, g := range node.GLSNs() {
			set[g.String()] = struct{}{}
		}
		if len(plan.Nodes) == 1 {
			return set, responsible, nil
		}
		out, err := runGLSNIntersect(ctx, node, sqSession, plan, set)
		return out, responsible, err

	case kindLocal:
		clause, err := parseClause(plan.Clause)
		if err != nil {
			return nil, false, err
		}
		set, err := evalClauseLocal(node, clause)
		return set, responsible, err

	case kindCrossUnion:
		clause, err := parseClause(plan.Clause)
		if err != nil {
			return nil, false, err
		}
		sub := subClauseForNode(clause, node.Partition(), self)
		local, err := evalClauseLocal(node, sub)
		if err != nil {
			return nil, false, err
		}
		elems := make([][]byte, 0, len(local))
		for g := range local {
			elems = append(elems, []byte(g))
		}
		cfg := union.Config{
			Group:     node.Group(),
			Ring:      plan.Nodes,
			Receivers: []string{plan.responsible()},
			Session:   sqSession,
		}
		res, err := union.Run(ctx, node.Mailbox(), cfg, elems)
		if err != nil {
			return nil, false, err
		}
		if !responsible {
			return nil, false, nil
		}
		set := make(map[string]struct{}, len(res))
		for _, el := range res {
			set[string(el)] = struct{}{}
		}
		return set, true, nil

	case kindCrossEq:
		clause, err := parseClause(plan.Clause)
		if err != nil {
			return nil, false, err
		}
		pred := clause.Preds[0]
		myAttr, err := ownedAttr(node, pred)
		if err != nil {
			return nil, false, err
		}
		elems := make([][]byte, 0)
		for _, g := range node.GLSNs() {
			frag, ok := node.Fragment(g)
			if !ok {
				continue
			}
			v, ok := frag.Values[myAttr]
			if !ok {
				continue
			}
			elems = append(elems, []byte(g.String()+"|"+v.Render()))
		}
		cfg := intersect.Config{
			Group:     node.Group(),
			Ring:      plan.Nodes,
			Receivers: []string{plan.responsible()},
			Session:   sqSession,
		}
		res, err := intersect.Run(ctx, node.Mailbox(), cfg, elems)
		if err != nil {
			return nil, false, err
		}
		if !responsible {
			return nil, false, nil
		}
		set := make(map[string]struct{}, len(res.Plaintext))
		for _, el := range res.Plaintext {
			s := string(el)
			if i := strings.IndexByte(s, '|'); i > 0 {
				set[s[:i]] = struct{}{}
			}
		}
		return set, true, nil

	case kindCrossCmp:
		return executeCrossCmp(ctx, node, sqSession, plan)

	default:
		return nil, false, fmt.Errorf("%w: plan kind %q", ErrUnsupported, plan.Kind)
	}
}

// runGLSNIntersect intersects plain glsn sets across the plan nodes (the
// "*" criteria path).
func runGLSNIntersect(ctx context.Context, node NodeState, session string, plan *wirePlan, local map[string]struct{}) (map[string]struct{}, error) {
	elems := make([][]byte, 0, len(local))
	for g := range local {
		elems = append(elems, []byte(g))
	}
	cfg := intersect.Config{
		Group:     node.Group(),
		Ring:      plan.Nodes,
		Receivers: []string{plan.responsible()},
		Session:   session,
	}
	res, err := intersect.Run(ctx, node.Mailbox(), cfg, elems)
	if err != nil {
		return nil, err
	}
	if plan.responsible() != node.ID() {
		return nil, nil
	}
	set := make(map[string]struct{}, len(res.Plaintext))
	for _, el := range res.Plaintext {
		set[string(el)] = struct{}{}
	}
	return set, nil
}

// executeCrossCmp evaluates attrL ⊗ attrR across two nodes via the
// blind-TTP batch comparison.
func executeCrossCmp(ctx context.Context, node NodeState, session string, plan *wirePlan) (map[string]struct{}, bool, error) {
	self := node.ID()
	clause, err := parseClause(plan.Clause)
	if err != nil {
		return nil, false, err
	}
	pred := clause.Preds[0]
	part := node.Partition()
	leftOwner := part.Owner(pred.Left.Attr)
	rightOwner := part.Owner(pred.Right.Attr)
	cfg := compare.BatchConfig{
		Holders: [2]string{leftOwner, rightOwner},
		TTP:     plan.TTP,
		MaxAbs:  cmpMaxAbs,
		Session: session + "/cmp",
	}
	if self == plan.TTP {
		return nil, false, compare.ServeBatchCompare(ctx, node.Mailbox(), cfg)
	}
	var myAttr logmodel.Attr
	var peer string
	switch self {
	case leftOwner:
		myAttr, peer = pred.Left.Attr, rightOwner
	case rightOwner:
		myAttr, peer = pred.Right.Attr, leftOwner
	default:
		return nil, false, fmt.Errorf("%w: %s not a holder of %s", ErrUnsupported, self, pred)
	}

	// Align keys: exchange sorted glsn lists, take the common prefix-
	// free intersection. glsn lists are "aggregated information" the
	// relaxed model permits to flow between the two holders.
	mine := make(map[string]*big.Int)
	for _, g := range node.GLSNs() {
		frag, ok := node.Fragment(g)
		if !ok {
			continue
		}
		v, ok := frag.Values[myAttr]
		if !ok {
			continue
		}
		enc, err := orderedInt(v)
		if err != nil {
			return nil, false, fmt.Errorf("attribute %q: %w", myAttr, err)
		}
		mine[g.String()] = enc
	}
	myKeys := make([]string, 0, len(mine))
	for k := range mine {
		myKeys = append(myKeys, k)
	}
	sort.Strings(myKeys)
	keysMsg, err := transport.NewMessage(peer, MsgKeys, session, myKeys)
	if err != nil {
		return nil, false, err
	}
	if err := node.Mailbox().Send(ctx, keysMsg); err != nil {
		return nil, false, err
	}
	peerMsg, err := node.Mailbox().ExpectFrom(ctx, peer, MsgKeys, session)
	if err != nil {
		return nil, false, fmt.Errorf("awaiting key alignment: %w", err)
	}
	var peerKeys []string
	if err := transport.Unmarshal(peerMsg.Payload, &peerKeys); err != nil {
		return nil, false, err
	}
	peerSet := make(map[string]struct{}, len(peerKeys))
	for _, k := range peerKeys {
		peerSet[k] = struct{}{}
	}
	common := make([]string, 0, len(myKeys))
	values := make([]*big.Int, 0, len(myKeys))
	for _, k := range myKeys {
		if _, ok := peerSet[k]; ok {
			common = append(common, k)
			values = append(values, mine[k])
		}
	}

	signs, err := compare.BatchCompare(ctx, node.Mailbox(), cfg, common, values)
	if err != nil {
		return nil, false, err
	}
	if plan.responsible() != self {
		return nil, false, nil
	}
	set := make(map[string]struct{})
	for k, sign := range signs {
		if opSatisfied(pred.Op, sign) {
			set[k] = struct{}{}
		}
	}
	return set, true, nil
}

// opSatisfied maps a comparison sign (left vs right) onto the operator.
func opSatisfied(op query.Op, sign int) bool {
	switch op {
	case query.OpEQ:
		return sign == 0
	case query.OpNE:
		return sign != 0
	case query.OpLT:
		return sign < 0
	case query.OpLE:
		return sign <= 0
	case query.OpGT:
		return sign > 0
	case query.OpGE:
		return sign >= 0
	default:
		return false
	}
}

// orderedInt maps a numeric attribute value to an order-preserving
// integer: integers map to themselves, floats are scaled by 1e6 (the
// documented precision of cross-node float comparison). Strings support
// only equality, which routes through kindCrossEq instead.
func orderedInt(v logmodel.Value) (*big.Int, error) {
	switch v.Kind {
	case logmodel.KindInt:
		return big.NewInt(v.I), nil
	case logmodel.KindFloat:
		return big.NewInt(int64(math.Round(v.F * 1e6))), nil
	default:
		return nil, fmt.Errorf("%w: order comparison on non-numeric value", ErrUnsupported)
	}
}

// clauseCache memoizes parseClause: every node of a plan re-parses the
// same rendered clause, and the audit hot path re-parses it per query.
// Cached clauses are treated as read-only by all callers.
var clauseCache sync.Map // string -> query.Clause

// parseClause re-parses a clause rendered by query.Clause.String. The
// rendering is itself valid criteria syntax, so Parse∘Normalize yields
// one clause back.
func parseClause(src string) (query.Clause, error) {
	if c, ok := clauseCache.Load(src); ok {
		return c.(query.Clause), nil
	}
	if src == "*" {
		return query.Clause{}, nil
	}
	expr, err := query.Parse(src)
	if err != nil {
		return query.Clause{}, err
	}
	norm, err := query.Normalize(expr)
	if err != nil {
		return query.Clause{}, err
	}
	if len(norm.Clauses) != 1 {
		return query.Clause{}, fmt.Errorf("audit: clause %q re-normalized into %d clauses", src, len(norm.Clauses))
	}
	clauseCache.Store(src, norm.Clauses[0])
	return norm.Clauses[0], nil
}

// AttrIndexer is an optional NodeState capability: a store maintaining
// per-attribute value indexes. IndexLookup returns the glsns whose
// fragment stores exactly v for attr; ok is false when the index cannot
// answer with scan-identical semantics and the caller must fall back to
// the full scan.
type AttrIndexer interface {
	IndexLookup(attr logmodel.Attr, v logmodel.Value) ([]logmodel.GLSN, bool)
}

// evalClauseLocal evaluates a clause over the node's fragments. Pure
// equality conjunctions answer from the store's attribute indexes when
// the node maintains them; everything else — range or cross-attribute
// predicates, or value distributions the index cannot represent
// faithfully — scans every fragment.
func evalClauseLocal(node NodeState, clause query.Clause) (map[string]struct{}, error) {
	set := make(map[string]struct{})
	if len(clause.Preds) == 0 {
		return set, nil
	}
	if ix, ok := node.(AttrIndexer); ok {
		if set, ok := evalClauseIndexed(ix, clause); ok {
			return set, nil
		}
	}
	for _, g := range node.GLSNs() {
		frag, ok := node.Fragment(g)
		if !ok {
			continue
		}
		match, err := clause.Eval(frag.Values)
		if err != nil {
			return nil, err
		}
		if match {
			set[g.String()] = struct{}{}
		}
	}
	return set, nil
}

// evalClauseIndexed answers a clause from attribute indexes. It applies
// only when every predicate is an equality between one attribute and
// one constant and every lookup is answerable; the result is then the
// intersection of the per-predicate glsn sets. All lookups run before
// intersecting, so a clause with any unanswerable predicate falls back
// as a whole — the scan reproduces error and cross-class semantics.
func evalClauseIndexed(ix AttrIndexer, clause query.Clause) (map[string]struct{}, bool) {
	sets := make([]map[string]struct{}, 0, len(clause.Preds))
	for _, p := range clause.Preds {
		if p.Op != query.OpEQ {
			return nil, false
		}
		var attr logmodel.Attr
		var c logmodel.Value
		switch {
		case p.Left.IsAttr && !p.Right.IsAttr:
			attr, c = p.Left.Attr, p.Right.Const
		case !p.Left.IsAttr && p.Right.IsAttr:
			attr, c = p.Right.Attr, p.Left.Const
		default:
			return nil, false // attr=attr or const=const: scan path
		}
		glsns, ok := ix.IndexLookup(attr, c)
		if !ok {
			return nil, false
		}
		set := make(map[string]struct{}, len(glsns))
		for _, g := range glsns {
			set[g.String()] = struct{}{}
		}
		sets = append(sets, set)
	}
	return intersectSets(sets), true
}

// subClauseForNode keeps the predicates whose attributes this node owns.
func subClauseForNode(clause query.Clause, part *logmodel.Partition, self string) query.Clause {
	out := query.Clause{}
	for _, p := range clause.Preds {
		ownsAll := true
		for _, a := range p.ReferencedAttrs() {
			if part.Owner(a) != self {
				ownsAll = false
				break
			}
		}
		if ownsAll {
			out.Preds = append(out.Preds, p)
		}
	}
	return out
}

// intersectSets intersects glsn sets held locally.
func intersectSets(sets []map[string]struct{}) map[string]struct{} {
	if len(sets) == 0 {
		return map[string]struct{}{}
	}
	out := make(map[string]struct{}, len(sets[0]))
	for g := range sets[0] {
		out[g] = struct{}{}
	}
	for _, s := range sets[1:] {
		for g := range out {
			if _, ok := s[g]; !ok {
				delete(out, g)
			}
		}
	}
	return out
}

// ownedAttr returns the predicate attribute this node owns.
func ownedAttr(node NodeState, pred query.Pred) (logmodel.Attr, error) {
	part := node.Partition()
	for _, a := range pred.ReferencedAttrs() {
		if part.Owner(a) == node.ID() {
			return a, nil
		}
	}
	return "", fmt.Errorf("%w: %s owns neither side of %s", ErrUnsupported, node.ID(), pred)
}
