package audit

import (
	"context"
	"crypto/rand"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"confaudit/internal/cluster"
	"confaudit/internal/logmodel"
	"confaudit/internal/mathx"
	"confaudit/internal/ticket"
	"confaudit/internal/transport"
)

// rig is a full DLA cluster running the audit service, loaded with the
// paper's Table 1 data.
type rig struct {
	boot    *cluster.Bootstrap
	net     *transport.MemNetwork
	nodes   map[string]*cluster.Node
	auditor *Auditor
}

var (
	bootOnce sync.Once
	bootVal  *cluster.Bootstrap
	bootErr  error
)

func sharedBootstrap(t testing.TB) *cluster.Bootstrap {
	t.Helper()
	bootOnce.Do(func() {
		ex, err := logmodel.NewPaperExample()
		if err != nil {
			bootErr = err
			return
		}
		bootVal, bootErr = cluster.NewBootstrap(rand.Reader, ex.Partition, mathx.Oakley768, cluster.BootstrapOptions{})
	})
	if bootErr != nil {
		t.Fatalf("bootstrap: %v", bootErr)
	}
	return bootVal
}

func newRig(t *testing.T) *rig {
	t.Helper()
	boot := sharedBootstrap(t)
	net := transport.NewMemNetwork()
	ctx, cancel := context.WithCancel(context.Background())
	r := &rig{boot: boot, net: net, nodes: make(map[string]*cluster.Node)}
	var wg sync.WaitGroup
	for _, id := range boot.Roster {
		ep, err := net.Endpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		mb := transport.NewMailbox(ep)
		node, err := cluster.New(boot.NodeConfig(id), mb)
		if err != nil {
			t.Fatal(err)
		}
		node.Start(ctx)
		wg.Add(1)
		go func(node *cluster.Node) {
			defer wg.Done()
			Serve(ctx, node)
		}(node)
		r.nodes[id] = node
	}
	t.Cleanup(func() {
		cancel()
		net.Close() //nolint:errcheck
		for _, n := range r.nodes {
			n.Wait()
		}
		wg.Wait()
	})

	// Load the Table 1 records under a writer ticket.
	loadCtx, loadCancel := context.WithTimeout(ctx, 60*time.Second)
	defer loadCancel()
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	wep, err := net.Endpoint("writer")
	if err != nil {
		t.Fatal(err)
	}
	wmb := transport.NewMailbox(wep)
	t.Cleanup(func() { wmb.Close() }) //nolint:errcheck
	wtk, err := boot.Issuer.Issue("TW", "writer", ticket.OpWrite, ticket.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := cluster.OpenClient(wmb, cluster.ClientConfig{Roster: boot.Roster, Partition: boot.Partition, Accumulator: boot.AccParams, Ticket: wtk})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.RegisterTicket(loadCtx); err != nil {
		t.Fatal(err)
	}
	for _, rec := range ex.Records {
		if _, err := wc.Log(loadCtx, rec.Values); err != nil {
			t.Fatal(err)
		}
	}

	// Auditor with a read-capable ticket.
	aep, err := net.Endpoint("auditor")
	if err != nil {
		t.Fatal(err)
	}
	amb := transport.NewMailbox(aep)
	t.Cleanup(func() { amb.Close() }) //nolint:errcheck
	atk, err := boot.Issuer.Issue("TAud", "auditor", ticket.OpRead)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := cluster.OpenClient(amb, cluster.ClientConfig{Roster: boot.Roster, Partition: boot.Partition, Accumulator: boot.AccParams, Ticket: atk})
	if err != nil {
		t.Fatal(err)
	}
	if err := ac.RegisterTicket(loadCtx); err != nil {
		t.Fatal(err)
	}
	r.auditor = NewAuditor(amb, boot.Roster[0], atk.ID)
	return r
}

func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// glsnsOf maps 0-based Table 1 row indices to glsn values as assigned
// (sequential from 0x139aef78).
func glsnsOf(rows ...int) []logmodel.GLSN {
	out := make([]logmodel.GLSN, len(rows))
	for i, r := range rows {
		out[i] = logmodel.GLSN(0x139aef78 + uint64(r))
	}
	return out
}

func assertGLSNs(t *testing.T, got, want []logmodel.GLSN) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLocalPredicateQuery(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// C1 > 30 matches rows 1 (34), 2 (45), 4 (53).
	got, err := r.auditor.Query(ctx, `C1 > 30`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(1, 2, 4))
}

func TestConjunctionAcrossNodes(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// protocl = "UDP" (P3) AND id = "U1" (P1): rows 0, 2.
	got, err := r.auditor.Query(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(0, 2))
}

func TestThreeWayConjunction(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// Tid = T1100265 (P2) AND C1 < 30 (P3) AND id = "U1" (P1): row 0 only
	// (row 3 has C1=18 id=U2; row 0 C1=20 id=U1 Tid=..265).
	got, err := r.auditor.Query(ctx, `Tid = "T1100265" AND C1 < 30 AND id = "U1"`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(0))
}

func TestCrossNodeDisjunction(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// id = "U3" (P1, row 4) OR C1 = 20 (P3, row 0): union across nodes.
	got, err := r.auditor.Query(ctx, `id = "U3" OR C1 = 20`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(0, 4))
}

func TestNegationQuery(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// NOT (protocl = "UDP"): TCP rows 3, 4.
	got, err := r.auditor.Query(ctx, `NOT (protocl = "UDP")`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(3, 4))
}

func TestStarQuery(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	got, err := r.auditor.Query(ctx, "*")
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(0, 1, 2, 3, 4))
}

func TestEmptyResult(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	got, err := r.auditor.Query(ctx, `id = "U9"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestCrossEqualityPredicate(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// id (P1) = C3 (P2): no Table 1 row has id == C3, so empty; then log
	// one matching record and re-query.
	got, err := r.auditor.Query(ctx, `id = C3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}

	wep, err := r.net.Endpoint("writer2")
	if err != nil {
		t.Fatal(err)
	}
	wmb := transport.NewMailbox(wep)
	defer wmb.Close() //nolint:errcheck
	wtk, err := r.boot.Issuer.Issue("TW2", "writer2", ticket.OpWrite)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := cluster.OpenClient(wmb, cluster.ClientConfig{Roster: r.boot.Roster, Partition: r.boot.Partition, Accumulator: r.boot.AccParams, Ticket: wtk})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.RegisterTicket(ctx); err != nil {
		t.Fatal(err)
	}
	g, err := wc.Log(ctx, map[logmodel.Attr]logmodel.Value{
		"id": logmodel.String("match"),
		"C3": logmodel.String("match"),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = r.auditor.Query(ctx, `id = C3`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, []logmodel.GLSN{g})
}

func TestCrossComparisonPredicate(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// C1 (P3, int) < C2 (P1, float): C1 vs C2 per row:
	// 20<23.45 T, 34<345.11 T, 45<235.00 T, 18<45.02 T, 53<678.75 T.
	got, err := r.auditor.Query(ctx, `C1 < C2`)
	if err != nil {
		t.Fatal(err)
	}
	assertGLSNs(t, got, glsnsOf(0, 1, 2, 3, 4))

	// C1 > C2 matches nothing.
	got, err = r.auditor.Query(ctx, `C1 > C2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestAggregates(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	cases := []struct {
		name     string
		criteria string
		kind     AggKind
		attr     logmodel.Attr
		want     float64
	}{
		{"count all", "*", AggCount, "", 5},
		{"count udp", `protocl = "UDP"`, AggCount, "", 3},
		{"sum C1", "*", AggSum, "C1", 20 + 34 + 45 + 18 + 53},
		{"sum C2 over tcp", `protocl = "TCP"`, AggSum, "C2", 45.02 + 678.75},
		{"max C1", "*", AggMax, "C1", 53},
		{"min C1", "*", AggMin, "C1", 18},
		{"avg C1", "*", AggAvg, "C1", 34},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := r.auditor.Aggregate(ctx, tc.criteria, tc.kind, tc.attr)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestQueryDeniedWithoutTicket(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	ep, err := r.net.Endpoint("stranger")
	if err != nil {
		t.Fatal(err)
	}
	mb := transport.NewMailbox(ep)
	defer mb.Close() //nolint:errcheck
	a := NewAuditor(mb, r.boot.Roster[0], "TNone")
	_, err = a.Query(ctx, `C1 > 0`)
	if err == nil || !strings.Contains(err.Error(), "denied") {
		t.Fatalf("err = %v, want denial", err)
	}
}

func TestQueryDeniedWriteOnlyTicket(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	ep, err := r.net.Endpoint("wo")
	if err != nil {
		t.Fatal(err)
	}
	mb := transport.NewMailbox(ep)
	defer mb.Close() //nolint:errcheck
	tk, err := r.boot.Issuer.Issue("TWO", "wo", ticket.OpWrite)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.OpenClient(mb, cluster.ClientConfig{Roster: r.boot.Roster, Partition: r.boot.Partition, Accumulator: r.boot.AccParams, Ticket: tk})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTicket(ctx); err != nil {
		t.Fatal(err)
	}
	a := NewAuditor(mb, r.boot.Roster[0], tk.ID)
	if _, err := a.Query(ctx, `C1 > 0`); err == nil {
		t.Fatal("write-only ticket ran a query")
	}
}

func TestMalformedCriteriaRejected(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	if _, err := r.auditor.Query(ctx, `C1 >`); err == nil {
		t.Fatal("malformed criteria accepted")
	}
	if _, err := r.auditor.Query(ctx, `nosuchattr = 1`); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestUnsupportedCrossShapeRejected(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	// A disjunction containing a node-spanning predicate is outside the
	// engine's repertoire and must fail loudly, not silently misreport.
	_, err := r.auditor.Query(ctx, `id = C3 OR C1 = 20`)
	if err == nil {
		t.Fatal("unsupported criteria accepted")
	}
}

func TestConcurrentQueries(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := r.auditor.Query(ctx, `protocl = "UDP" AND id = "U1"`)
			if err != nil {
				t.Errorf("query: %v", err)
				return
			}
			if len(got) != 2 {
				t.Errorf("got %v", got)
			}
		}()
	}
	wg.Wait()
}

func TestAggregateOverUnknownAttr(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	if _, err := r.auditor.Aggregate(ctx, "*", AggSum, "nosuch"); err == nil {
		t.Fatal("aggregate over unknown attribute accepted")
	}
	if _, err := r.auditor.Aggregate(ctx, "*", AggKind("median"), "C1"); err == nil {
		t.Fatal("unknown aggregate kind accepted")
	}
	// Sum over a string attribute fails at the owner.
	if _, err := r.auditor.Aggregate(ctx, "*", AggSum, "id"); err == nil {
		t.Fatal("sum over string attribute accepted")
	}
}
