package audit

import (
	"testing"
)

// TestCheckTransactionConforming audits transaction T1100267 (Table 1
// rows 2 and 4) against rules it satisfies.
func TestCheckTransactionConforming(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	report, err := r.auditor.CheckTransaction(ctx, "Tid", "T1100267", []string{
		`C1 > 40`,     // rows 2 (45) and 4 (53) both pass
		`C2 >= 235.0`, // 235.00 and 678.75 both pass
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Records) != 2 {
		t.Fatalf("transaction has %d records, want 2", len(report.Records))
	}
	if !report.Conforms() {
		t.Fatalf("conforming transaction flagged: %+v", report.Violations)
	}
}

// TestCheckTransactionViolations audits T1100265 (rows 0, 1, 3) against
// a rule row 3 violates.
func TestCheckTransactionViolations(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	report, err := r.auditor.CheckTransaction(ctx, "Tid", "T1100265", []string{
		`protocl = "UDP"`, // row 3 is TCP -> violation
		`C1 >= 18`,        // all pass
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Records) != 3 {
		t.Fatalf("transaction has %d records, want 3", len(report.Records))
	}
	if report.Conforms() {
		t.Fatal("violating transaction reported conforming")
	}
	v := report.Violations[`protocl = "UDP"`]
	if len(v) != 1 || v[0] != glsnsOf(3)[0] {
		t.Fatalf("violations = %v, want row 3", v)
	}
	if len(report.Violations[`C1 >= 18`]) != 0 {
		t.Fatalf("clean rule reported violations: %v", report.Violations[`C1 >= 18`])
	}
}

// TestCheckTransactionCrossNodeRule uses a rule spanning DLA nodes (the
// §4.2 distributed-events case): C1 on P3 vs C2 on P1.
func TestCheckTransactionCrossNodeRule(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	report, err := r.auditor.CheckTransaction(ctx, "Tid", "T1100265", []string{
		`C1 < C2`, // true for all three records of the transaction
	})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Conforms() {
		t.Fatalf("cross-node rule flagged conforming records: %+v", report.Violations)
	}
}

func TestCheckTransactionUnknownTid(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	report, err := r.auditor.CheckTransaction(ctx, "Tid", "T9999999", []string{`C1 > 0`})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Records) != 0 || !report.Conforms() {
		t.Fatalf("empty transaction misreported: %+v", report)
	}
}

func TestCheckTransactionBadRule(t *testing.T) {
	r := newRig(t)
	ctx := testCtx(t)
	if _, err := r.auditor.CheckTransaction(ctx, "Tid", "T1100265", []string{`C1 >`}); err == nil {
		t.Fatal("malformed rule accepted")
	}
}
