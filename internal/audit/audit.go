// Package audit implements the distributed confidential auditing query
// engine of paper §2 and Figure 3.
//
// Flow: an auditor holding a read ticket submits an auditing criterion Q
// to a coordinator DLA node. The coordinator normalizes Q to conjunctive
// form (SQ_1) ∧ ... ∧ (SQ_m), classifies every subquery as local or
// cross, and dispatches an execution plan to the involved nodes. Each
// node evaluates its subqueries:
//
//   - local subqueries directly over its fragment store;
//   - cross equality predicates (attr_i = attr_j across nodes) via
//     two-party secure set intersection over glsn|value elements;
//   - cross order predicates via the blind-TTP batch comparison of §3.3;
//   - cross disjunctions that decompose per node via secure set union.
//
// The conjunction of subquery results is then computed with secure set
// intersection keyed by glsn (exactly as the paper prescribes), and only
// the final glsn list reaches the auditor. No DLA node learns another
// node's attribute values, and the auditor sees no raw fragments unless
// separately authorized per glsn.
package audit

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"strconv"
	"sync/atomic"

	"confaudit/internal/crypto/blind"
	"confaudit/internal/logmodel"
	"confaudit/internal/mathx"
	"confaudit/internal/query"
	"confaudit/internal/ticket"
	"confaudit/internal/transport"
)

// Message types of the audit protocol.
const (
	MsgQuery  = "audit.query"
	MsgExec   = "audit.exec"
	MsgKeys   = "audit.keys"
	MsgAggReq = "audit.aggreq"
	MsgSig    = "audit.sig"
	MsgFinal  = "audit.final"
	MsgResult = "audit.result"
)

// sigBody carries one ring node's result signature, piggybacking the
// glsn extents its storage recovery quarantined (if any) so the final
// receiver can mark the result partial.
type sigBody struct {
	Sig         *big.Int `json:"sig"`
	Quarantined []string `json:"quarantined,omitempty"`
}

// Errors reported by the engine.
var (
	// ErrUnsupported indicates a criterion outside the engine's cross-
	// predicate repertoire.
	ErrUnsupported = errors.New("audit: unsupported criteria shape")
	// ErrDenied indicates a ticket without query authority.
	ErrDenied = errors.New("audit: query denied")
	// ErrNoTTP indicates a cross comparison with no third node available.
	ErrNoTTP = errors.New("audit: no third node available as blind TTP")
)

// AggKind selects an aggregate function.
type AggKind string

// Aggregate kinds, the paper's statistics primitives (count/sum/max/min)
// plus the derived average.
const (
	AggCount AggKind = "count"
	AggSum   AggKind = "sum"
	AggMax   AggKind = "max"
	AggMin   AggKind = "min"
	AggAvg   AggKind = "avg"
)

// QuarantineViewer is optionally implemented by NodeState backends
// whose storage recovery can refuse (quarantine) corrupted history.
// Nodes that implement it report the quarantined glsn extents, and the
// audit layer marks results touching them partial. cluster.Node
// implements it; implementations without one never degrade this way.
type QuarantineViewer interface {
	QuarantinedExtents() []string
}

// quarantineOf reads a node's quarantined extents if it exposes them.
func quarantineOf(node NodeState) []string {
	if qv, ok := node.(QuarantineViewer); ok {
		return qv.QuarantinedExtents()
	}
	return nil
}

// NodeState is the cluster-node surface the engine needs; implemented
// by cluster.Node.
type NodeState interface {
	ID() string
	Partition() *logmodel.Partition
	Group() *mathx.Group
	Mailbox() *transport.Mailbox
	GLSNs() []logmodel.GLSN
	Fragment(logmodel.GLSN) (logmodel.Fragment, bool)
	TicketAllows(ticketID string, op ticket.Op) error
	// Sign certifies audit results under the node's cluster key.
	Sign(data []byte) (*big.Int, error)
	// PeerKeys returns the cluster verification keys.
	PeerKeys() map[string]blind.PublicKey
}

// plan kinds.
type planKind string

const (
	kindLocal      planKind = "local"
	kindAll        planKind = "all"
	kindCrossEq    planKind = "cross-eq"
	kindCrossCmp   planKind = "cross-cmp"
	kindCrossUnion planKind = "cross-union"
)

// wirePlan is one subquery's execution assignment.
type wirePlan struct {
	Index  int      `json:"index"`
	Clause string   `json:"clause"`
	Nodes  []string `json:"nodes"`
	Kind   planKind `json:"kind"`
	TTP    string   `json:"ttp,omitempty"`
}

type queryBody struct {
	TicketID string        `json:"ticket_id"`
	Criteria string        `json:"criteria"`
	AggKind  AggKind       `json:"agg_kind,omitempty"`
	AggAttr  logmodel.Attr `json:"agg_attr,omitempty"`
}

type execBody struct {
	Plans         []wirePlan `json:"plans"`
	FinalRing     []string   `json:"final_ring"`
	FinalReceiver string     `json:"final_receiver"`
	Coordinator   string     `json:"coordinator"`
	// Querier is the auditor node the coordinator is serving, so
	// executors can attribute the secondary information they disclose
	// to the right leak ledger. Wire-compatible in both directions:
	// legacy coordinators omit it (executors then skip ledger entries)
	// and legacy executors ignore it.
	Querier  string        `json:"querier,omitempty"`
	AggKind  AggKind       `json:"agg_kind,omitempty"`
	AggAttr  logmodel.Attr `json:"agg_attr,omitempty"`
	AggOwner string        `json:"agg_owner,omitempty"`
}

type finalBody struct {
	GLSNs []string    `json:"glsns,omitempty"`
	Agg   float64     `json:"agg,omitempty"`
	IsAgg bool        `json:"is_agg,omitempty"`
	Cert  *ResultCert `json:"cert,omitempty"`
	Error string      `json:"error,omitempty"`
	// Quarantined aggregates the ring nodes' quarantined storage
	// extents; the coordinator folds it into the result.
	Quarantined []string `json:"quarantined,omitempty"`
}

type resultBody struct {
	GLSNs []string    `json:"glsns,omitempty"`
	Agg   float64     `json:"agg,omitempty"`
	Cert  *ResultCert `json:"cert,omitempty"`
	Error string      `json:"error,omitempty"`
	// Unanswerable and Dead mark a degraded-mode result: the clauses
	// that could not be evaluated and the dead nodes responsible.
	Unanswerable []string `json:"unanswerable,omitempty"`
	Dead         []string `json:"dead,omitempty"`
	// Quarantined names glsn extents a participating node's storage
	// recovery refused to serve; records there may be missing from the
	// answer.
	Quarantined []string `json:"quarantined,omitempty"`
}

// buildPlans compiles a criterion into subquery assignments. The
// normalized criterion is returned alongside so the coordinator can
// score C_auditing (eq. 11) for the leak ledger without re-parsing; it
// is nil for the "*" criteria, which has no predicates to score.
func buildPlans(criteria string, part *logmodel.Partition) ([]wirePlan, *query.Normalized, error) {
	roster := part.Nodes()
	if criteria == "*" {
		return []wirePlan{{Index: 0, Clause: "*", Nodes: roster, Kind: kindAll}}, nil, nil
	}
	expr, err := query.Parse(criteria)
	if err != nil {
		return nil, nil, err
	}
	norm, err := query.Normalize(expr)
	if err != nil {
		return nil, nil, err
	}
	sqs, err := query.Classify(norm, part)
	if err != nil {
		return nil, nil, err
	}
	plans := make([]wirePlan, 0, len(sqs))
	for i, sq := range sqs {
		wp := wirePlan{Index: i, Clause: sq.Clause.String(), Nodes: sq.Nodes}
		switch {
		case !sq.Cross:
			wp.Kind = kindLocal
		case len(sq.Clause.Preds) == 1:
			pred := sq.Clause.Preds[0]
			if !pred.Left.IsAttr || !pred.Right.IsAttr {
				return nil, nil, fmt.Errorf("%w: cross predicate %s mixes scopes", ErrUnsupported, pred)
			}
			if pred.Op == query.OpEQ {
				wp.Kind = kindCrossEq
			} else {
				wp.Kind = kindCrossCmp
				ttp := pickTTP(roster, sq.Nodes)
				if ttp == "" {
					return nil, nil, fmt.Errorf("%w: predicate %s", ErrNoTTP, pred)
				}
				wp.TTP = ttp
			}
		default:
			// Every predicate must be evaluable on a single node.
			for _, p := range sq.Clause.Preds {
				owners := make(map[string]struct{})
				for _, a := range p.ReferencedAttrs() {
					owners[part.Owner(a)] = struct{}{}
				}
				if len(owners) > 1 {
					return nil, nil, fmt.Errorf("%w: predicate %s spans nodes inside a disjunction", ErrUnsupported, p)
				}
			}
			wp.Kind = kindCrossUnion
		}
		plans = append(plans, wp)
	}
	return plans, norm, nil
}

// pickTTP chooses a roster node outside the holder pair.
func pickTTP(roster, holders []string) string {
	isHolder := make(map[string]struct{}, len(holders))
	for _, h := range holders {
		isHolder[h] = struct{}{}
	}
	for _, n := range roster {
		if _, ok := isHolder[n]; !ok {
			return n
		}
	}
	return ""
}

// responsible returns the node holding the result of a plan.
func (p *wirePlan) responsible() string { return p.Nodes[0] }

// involved returns every node the plan touches (holders + TTP).
func (p *wirePlan) involved() []string {
	if p.TTP == "" {
		return p.Nodes
	}
	return append(append([]string(nil), p.Nodes...), p.TTP)
}

// Auditor is the query client.
type Auditor struct {
	mb          *transport.Mailbox
	coordinator string
	ticketID    string
	session     atomic.Uint64
}

// NewAuditor builds a client that submits queries to the coordinator
// node under the given ticket.
func NewAuditor(mb *transport.Mailbox, coordinator, ticketID string) *Auditor {
	return &Auditor{mb: mb, coordinator: coordinator, ticketID: ticketID}
}

func (a *Auditor) nextSession() string {
	return "q/" + a.mb.ID() + "/" + strconv.FormatUint(a.session.Add(1), 10)
}

// Query runs an auditing criterion and returns the matching glsns. A
// degraded-mode result returns the partial glsn list together with a
// *PartialResultError (check with errors.As).
func (a *Auditor) Query(ctx context.Context, criteria string) ([]logmodel.GLSN, error) {
	glsns, _, _, err := a.QueryCertified(ctx, criteria)
	return glsns, err
}

// QueryCertified runs an auditing criterion and additionally returns
// the result certificate — signatures by every node responsible for a
// subquery over the digest of the glsn list — and the session it binds.
// Verify with VerifyResult against the cluster's public keys; a single
// compromised responder cannot forge a certified result.
//
// When the cluster has dead nodes, a query touching their attributes
// completes over the survivors and returns the partial glsn list
// alongside a *PartialResultError naming the unanswerable clauses.
func (a *Auditor) QueryCertified(ctx context.Context, criteria string) ([]logmodel.GLSN, string, *ResultCert, error) {
	session := a.nextSession()
	res, err := a.roundTripSession(ctx, session, queryBody{TicketID: a.ticketID, Criteria: criteria})
	if err != nil {
		return nil, "", nil, err
	}
	out := make([]logmodel.GLSN, 0, len(res.GLSNs))
	for _, s := range res.GLSNs {
		g, err := logmodel.ParseGLSN(s)
		if err != nil {
			return nil, "", nil, err
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if len(res.Unanswerable) > 0 || len(res.Quarantined) > 0 {
		return out, session, res.Cert, &PartialResultError{
			GLSNs:        out,
			Unanswerable: res.Unanswerable,
			Dead:         res.Dead,
			Quarantined:  res.Quarantined,
		}
	}
	return out, session, res.Cert, nil
}

// Aggregate runs an auditing criterion and returns an aggregate over the
// named attribute of the matching records — the paper's "number of
// transactions, total of volumes" style of confidential audit result.
func (a *Auditor) Aggregate(ctx context.Context, criteria string, kind AggKind, attr logmodel.Attr) (float64, error) {
	res, err := a.roundTrip(ctx, queryBody{
		TicketID: a.ticketID,
		Criteria: criteria,
		AggKind:  kind,
		AggAttr:  attr,
	})
	if err != nil {
		return 0, err
	}
	return res.Agg, nil
}

func (a *Auditor) roundTrip(ctx context.Context, body queryBody) (*resultBody, error) {
	return a.roundTripSession(ctx, a.nextSession(), body)
}

func (a *Auditor) roundTripSession(ctx context.Context, session string, body queryBody) (*resultBody, error) {
	msg, err := transport.NewMessage(a.coordinator, MsgQuery, session, body)
	if err != nil {
		return nil, err
	}
	if err := a.mb.Send(ctx, msg); err != nil {
		return nil, fmt.Errorf("audit: submitting query: %w", err)
	}
	resp, err := a.mb.Expect(ctx, MsgResult, session)
	if err != nil {
		return nil, fmt.Errorf("audit: awaiting result: %w", err)
	}
	var res resultBody
	if err := transport.Unmarshal(resp.Payload, &res); err != nil {
		return nil, err
	}
	if res.Error != "" {
		return nil, fmt.Errorf("audit: %s", res.Error)
	}
	return &res, nil
}
