package audit

import (
	"context"
	"fmt"
	"sort"

	"confaudit/internal/logmodel"
)

// Transaction conformance auditing (paper eq. 1-2 and §4.2): a
// transaction T carries a specification set R_T of boolean rules
// ("correlation, fairness, non-repudiation, atomic, consistency
// checking, irregular pattern detection"); the auditing system examines
// records across DLA nodes "to see whether or not T is executed
// according to the specifications defined in R_T" — without assembling
// the raw records anywhere.
//
// Each rule is an auditing criterion; a record of the transaction that
// fails a rule is a violation. Everything is computed through the
// confidential query engine, so the auditor sees only glsn sets.

// TransactionReport is the conformance verdict for one transaction.
type TransactionReport struct {
	// Attr and Value identify the transaction (e.g. Tid = "T1100265").
	Attr  logmodel.Attr
	Value string
	// Records lists every event of the transaction.
	Records []logmodel.GLSN
	// Violations maps each rule of R_T to the events violating it.
	Violations map[string][]logmodel.GLSN
}

// Conforms reports whether the transaction satisfies every rule.
func (r *TransactionReport) Conforms() bool {
	for _, v := range r.Violations {
		if len(v) > 0 {
			return false
		}
	}
	return true
}

// CheckTransaction audits one transaction against its specification set
// R_T. tidAttr/tidValue select the transaction's records (eq. 1's tsn
// keyed by an audit attribute); rules are auditing criteria that every
// record of the transaction must satisfy (eq. 2).
func (a *Auditor) CheckTransaction(ctx context.Context, tidAttr logmodel.Attr, tidValue string, rules []string) (*TransactionReport, error) {
	base := fmt.Sprintf(`%s = %q`, tidAttr, tidValue)
	records, err := a.Query(ctx, base)
	if err != nil {
		return nil, fmt.Errorf("audit: selecting transaction: %w", err)
	}
	report := &TransactionReport{
		Attr:       tidAttr,
		Value:      tidValue,
		Records:    records,
		Violations: make(map[string][]logmodel.GLSN, len(rules)),
	}
	inTxn := make(map[logmodel.GLSN]struct{}, len(records))
	for _, g := range records {
		inTxn[g] = struct{}{}
	}
	for _, rule := range rules {
		conforming, err := a.Query(ctx, base+" AND ("+rule+")")
		if err != nil {
			return nil, fmt.Errorf("audit: rule %q: %w", rule, err)
		}
		ok := make(map[logmodel.GLSN]struct{}, len(conforming))
		for _, g := range conforming {
			ok[g] = struct{}{}
		}
		var violations []logmodel.GLSN
		for g := range inTxn {
			if _, pass := ok[g]; !pass {
				violations = append(violations, g)
			}
		}
		sort.Slice(violations, func(i, j int) bool { return violations[i] < violations[j] })
		report.Violations[rule] = violations
	}
	return report, nil
}
