package audit

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"strings"

	"confaudit/internal/crypto/blind"
	"confaudit/internal/logmodel"
)

// Result certification: the paper has DLA nodes use "threshold
// signature and distributed majority agreement to provide trusted and
// reliable auditing". In this engine, every node responsible for a
// subquery also receives the final conjunction (they are all ∩s
// receivers) and signs a digest of the result. The auditor can then
// verify that every responsible node — not just the one that answered —
// stands behind the glsn list, so a single compromised responder cannot
// forge audit results.

// ErrBadResultCert indicates a certificate that fails verification.
var ErrBadResultCert = errors.New("audit: invalid result certificate")

// ResultCert certifies a query result.
type ResultCert struct {
	// Ring lists the nodes that were responsible for subqueries (and
	// therefore know the result).
	Ring []string `json:"ring"`
	// Sigs maps each ring node to its signature over the result digest.
	Sigs map[string]*big.Int `json:"sigs"`
}

// certStatement is the byte string ring nodes sign: a hash of the
// session and the sorted glsn list.
func certStatement(session string, glsns []string) []byte {
	h := sha256.New()
	h.Write([]byte("auditres|"))
	h.Write([]byte(session))
	h.Write([]byte{'|'})
	h.Write([]byte(strings.Join(glsns, ",")))
	return h.Sum(nil)
}

// VerifyResult checks a certified query result: every ring node signed
// the digest of exactly these glsns.
func VerifyResult(keys map[string]blind.PublicKey, session string, glsns []logmodel.GLSN, cert *ResultCert) error {
	if cert == nil || len(cert.Ring) == 0 {
		return fmt.Errorf("%w: missing certificate", ErrBadResultCert)
	}
	strs := make([]string, len(glsns))
	for i, g := range glsns {
		strs[i] = g.String()
	}
	stmt := certStatement(session, strs)
	for _, node := range cert.Ring {
		sig, ok := cert.Sigs[node]
		if !ok {
			return fmt.Errorf("%w: node %s did not sign", ErrBadResultCert, node)
		}
		pub, ok := keys[node]
		if !ok {
			return fmt.Errorf("%w: unknown signer %s", ErrBadResultCert, node)
		}
		if err := blind.Verify(pub, stmt, sig); err != nil {
			return fmt.Errorf("%w: signature of %s rejected", ErrBadResultCert, node)
		}
	}
	return nil
}
