package audit

import (
	"sort"
	"sync"

	"confaudit/internal/logmodel"
	"confaudit/internal/query"
)

// Centralized is the paper's Figure 1 baseline: a single trusted
// auditor that holds every complete log record and evaluates criteria
// directly. It exists as the comparison point for the DLA architecture —
// fast and simple, but it "puts the absolute trust to the single
// auditor" and concentrates the full log in one place.
type Centralized struct {
	mu      sync.RWMutex
	records map[logmodel.GLSN]logmodel.Record
}

// NewCentralized creates an empty centralized log repository.
func NewCentralized() *Centralized {
	return &Centralized{records: make(map[logmodel.GLSN]logmodel.Record)}
}

// Store ingests a full record.
func (c *Centralized) Store(rec logmodel.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records[rec.GLSN] = rec.Clone()
}

// Len returns the number of stored records.
func (c *Centralized) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.records)
}

// Query evaluates an auditing criterion over the full log.
func (c *Centralized) Query(criteria string) ([]logmodel.GLSN, error) {
	var norm *query.Normalized
	if criteria != "*" {
		expr, err := query.Parse(criteria)
		if err != nil {
			return nil, err
		}
		if norm, err = query.Normalize(expr); err != nil {
			return nil, err
		}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]logmodel.GLSN, 0)
	for g, rec := range c.records {
		if norm == nil {
			out = append(out, g)
			continue
		}
		ok, err := norm.Eval(rec.Values)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Aggregate folds an aggregate over the matching records.
func (c *Centralized) Aggregate(criteria string, kind AggKind, attr logmodel.Attr) (float64, error) {
	glsns, err := c.Query(criteria)
	if err != nil {
		return 0, err
	}
	if kind == AggCount {
		return float64(len(glsns)), nil
	}
	strs := make([]string, len(glsns))
	for i, g := range glsns {
		strs[i] = g.String()
	}
	return computeAggregate(centralizedState{c}, kind, attr, strs)
}

// centralizedState adapts Centralized to the fragment-reading surface
// aggregation needs.
type centralizedState struct{ c *Centralized }

var _ fragmentReader = centralizedState{}

func (s centralizedState) Fragment(g logmodel.GLSN) (logmodel.Fragment, bool) {
	s.c.mu.RLock()
	defer s.c.mu.RUnlock()
	rec, ok := s.c.records[g]
	if !ok {
		return logmodel.Fragment{}, false
	}
	return logmodel.Fragment{GLSN: g, Node: "centralized", Values: rec.Values}, true
}
