package audit

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"confaudit/internal/transport"
)

// TestQueryFailsFastWhenNodeUnreachable partitions a DLA node and
// verifies the auditor gets an error within its own deadline instead of
// hanging (the coordinator cannot finish the secure conjunction without
// the partitioned node).
func TestQueryFailsFastWhenNodeUnreachable(t *testing.T) {
	r := newRig(t)
	// Cut P3 (owner of protocl/C1) off from the rest of the cluster.
	r.net.Partition("P3")
	defer r.net.Partition() // heal for other tests sharing the bootstrap

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	_, err := r.auditor.Query(ctx, `protocl = "UDP" AND id = "U1"`)
	if err == nil {
		t.Fatal("query succeeded across a partition")
	}
	if !errors.Is(err, context.DeadlineExceeded) && err.Error() == "" {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

// TestQueryAfterHealRecovers verifies the same query succeeds once the
// partition heals — no poisoned state is left behind.
func TestQueryAfterHealRecovers(t *testing.T) {
	r := newRig(t)
	r.net.Partition("P2")
	ctx1, cancel1 := context.WithTimeout(context.Background(), 2*time.Second)
	_, err := r.auditor.Query(ctx1, `Tid = "T1100265"`)
	cancel1()
	if err == nil {
		t.Fatal("query succeeded across a partition")
	}
	r.net.Partition() // heal

	ctx := testCtx(t)
	got, err := r.auditor.Query(ctx, `Tid = "T1100265"`)
	if err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 records", got)
	}
}

// TestLossyNetworkQuery drops a fraction of protocol messages; the
// query must fail cleanly (no hang beyond the client deadline, no wrong
// answer).
func TestLossyNetworkQuery(t *testing.T) {
	r := newRig(t)
	var drop atomic.Int64
	r.net.SetDropFn(func(m transport.Message) bool {
		// Drop every 7th intersect relay — enough to break the final
		// conjunction ring deterministically.
		if m.Type == "intersect.relay" {
			return drop.Add(1)%7 == 0
		}
		return false
	})
	defer r.net.SetDropFn(nil)

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	got, err := r.auditor.Query(ctx, `protocl = "UDP" AND id = "U1"`)
	if err == nil && len(got) != 2 {
		t.Fatalf("lossy network returned a wrong answer: %v", got)
	}
	// Either a correct answer (losses missed the critical messages) or a
	// clean error are acceptable; a wrong answer is not.
}
