// Intrusion detection: the paper's §1 motivation — "distributed event
// correlation for intrusion detection". Independent hosts stream their
// security events into the DLA cluster; each host's own log looks
// innocuous (an occasional failed login), but the auditor correlates
// across hosts and finds the coordinated probe burst that touches every
// host in a single tick — an attack invisible to any single log,
// detected without any host surrendering its raw event stream.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"confaudit/pkg/dla"
)

const (
	hosts   = 4
	events  = 120
	burstAt = 77
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	schema, err := dla.ECommerceSchema(2)
	if err != nil {
		return err
	}
	part, err := dla.RoundRobinPartition(schema, 3)
	if err != nil {
		return err
	}
	cl, err := dla.Deploy(dla.ClusterOptions{Partition: part})
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	// One session per monitored host streams that host's events through
	// an Appender: events batch client-side and pipeline through the
	// cluster, and each ack carries the record's glsn.
	gen := dla.NewWorkload(1337)
	stream := gen.IntrusionEvents(schema, events, hosts, burstAt)
	for h := 0; h < hosts; h++ {
		id := fmt.Sprintf("host-%d", h)
		user, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: id, TicketID: "T-" + id})
		if err != nil {
			return err
		}
		ap, err := user.Appender(ctx, dla.AppendOptions{})
		if err != nil {
			return err
		}
		count := 0
		for _, e := range stream {
			if e["id"].S != id {
				continue
			}
			if _, err := ap.Append(ctx, e); err != nil {
				return err
			}
			count++
		}
		if err := ap.Close(ctx); err != nil {
			return err
		}
		fmt.Printf("%s: %d events logged\n", id, count)
	}

	soc, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: "soc", TicketID: "T-SOC", Ops: []dla.Op{dla.OpRead}})
	if err != nil {
		return err
	}
	defer soc.Close() //nolint:errcheck

	// Step 1: the failure rate across the estate.
	fails, err := soc.Aggregate(ctx, `Tid = "login-fail"`, dla.AggCount, "")
	if err != nil {
		return err
	}
	total, err := soc.Aggregate(ctx, "*", dla.AggCount, "")
	if err != nil {
		return err
	}
	fmt.Printf("\nSOC: %v failed logins out of %v events\n", fails, total)

	// Step 2: correlate — find ticks where failures hit multiple hosts.
	// The burst tick stands out: a failure on EVERY host.
	glsns, err := soc.Query(ctx, fmt.Sprintf(`Tid = "login-fail" AND time = "tick-%06d"`, burstAt))
	if err != nil {
		return err
	}
	fmt.Printf("SOC: failed logins at tick %d: %d records (across hosts)\n", burstAt, len(glsns))
	if len(glsns) == hosts {
		fmt.Printf("SOC: ALERT — coordinated probe touched all %d hosts at tick %d\n", hosts, burstAt)
	}

	// Step 3: severity profile of the burst (C2 carries severity here).
	sev, err := soc.Aggregate(ctx,
		fmt.Sprintf(`Tid = "login-fail" AND time = "tick-%06d"`, burstAt),
		dla.AggMax, "C2")
	if err != nil {
		return err
	}
	fmt.Printf("SOC: max severity within the burst: %v\n", sev)

	// No host ever shipped its raw log anywhere: the SOC saw only glsn
	// lists and aggregates, and each DLA node only attribute slices.
	return nil
}
