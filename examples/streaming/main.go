// Streaming: the firehose write path. A producer streams events
// through a Session.Appender — records batch client-side (sealed by
// count, bytes, or linger time), several batches pipeline through the
// quorum machinery at once, and each record's Ack future resolves with
// its glsn. The cluster is deployed with ingest admission bounds, so an
// overloaded node sheds load with ErrOverloaded and the appender
// absorbs it as backpressure instead of queueing unboundedly.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"confaudit/pkg/dla"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	schema, err := dla.ECommerceSchema(2)
	if err != nil {
		return err
	}
	part, err := dla.RoundRobinPartition(schema, 3)
	if err != nil {
		return err
	}
	// Admission bounds: each node admits at most 50k records/sec and
	// 4 MiB of store payload in flight; beyond that it refuses with
	// ErrOverloaded and the appender backs off.
	cl, err := dla.Deploy(dla.ClusterOptions{
		Partition: part,
		Admission: dla.AdmissionConfig{RecordsPerSec: 50_000, MaxInflightBytes: 4 << 20},
	})
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	producer, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: "sensor-0", TicketID: "T-S0"})
	if err != nil {
		return err
	}
	defer producer.Close() //nolint:errcheck

	// The appender: up to 64-record batches, sealed after 2ms linger at
	// the latest, four batches in the pipeline; overload blocks (the
	// default) rather than dropping.
	ap, err := producer.Appender(ctx, dla.AppendOptions{
		MaxBatchRecords: 64,
		Linger:          2 * time.Millisecond,
		MaxInflight:     4,
		OnOverload:      dla.OverloadBlock,
	})
	if err != nil {
		return err
	}

	// Stream 500 synthetic events; keep every ack so we can prove the
	// stream landed.
	gen := dla.NewWorkload(7)
	events := gen.Transactions(schema, 500, 8)
	acks := make([]*dla.Ack, 0, len(events))
	start := time.Now()
	for _, e := range events {
		ack, err := ap.Append(ctx, e)
		if err != nil {
			return err
		}
		acks = append(acks, ack)
	}
	// Close drains: every staged record's ack resolves before it
	// returns — success with a glsn, or the error that stopped it.
	if err := ap.Close(ctx); err != nil {
		return err
	}
	elapsed := time.Since(start)

	firstGLSN, err := acks[0].GLSN()
	if err != nil {
		return err
	}
	lastGLSN, err := acks[len(acks)-1].GLSN()
	if err != nil {
		return err
	}
	fmt.Printf("streamed %d events in %v (%.0f events/sec)\n",
		len(acks), elapsed.Round(time.Millisecond), float64(len(acks))/elapsed.Seconds())
	fmt.Printf("glsns %s..%s — monotone in append order\n", firstGLSN, lastGLSN)

	// The stream is immediately auditable.
	auditor, err := dla.Connect(ctx, cl, dla.SessionConfig{
		ID: "auditor", TicketID: "T-AUD", Ops: []dla.Op{dla.OpRead},
	})
	if err != nil {
		return err
	}
	defer auditor.Close() //nolint:errcheck
	n, err := auditor.Aggregate(ctx, "*", dla.AggCount, "")
	if err != nil {
		return err
	}
	fmt.Printf("auditor counts %v events across the cluster\n", n)
	return nil
}
