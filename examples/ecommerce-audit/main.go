// E-commerce audit: the paper's §2 motivating workload. Multiple
// independent merchants log business-to-business transaction events to
// a shared DLA cluster; a regulator audits cross-merchant activity —
// transaction counts, volume totals, per-merchant extremes — without
// any party revealing raw business records:
//
//   - the DLA query engine answers criteria over fragmented logs;
//   - the §3.5 secure sum aggregates private per-merchant revenue with
//     (k,n) secret sharing, so the total is known but no addend is;
//   - the §3.3 blind-TTP ranking finds the largest merchant without
//     disclosing any revenue figure.
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"
	"sync"
	"time"

	"confaudit/pkg/dla"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Schema with four undefined (application-private) attributes,
	// partitioned over four DLA nodes.
	schema, err := dla.ECommerceSchema(4)
	if err != nil {
		return err
	}
	part, err := dla.RoundRobinPartition(schema, 4)
	if err != nil {
		return err
	}
	cl, err := dla.Deploy(dla.ClusterOptions{Partition: part})
	if err != nil {
		return err
	}
	defer cl.Close() //nolint:errcheck

	// Three merchants log synthetic transaction streams.
	gen := dla.NewWorkload(2026)
	for i, merchant := range []string{"acme", "globex", "initech"} {
		user, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: merchant, TicketID: fmt.Sprintf("T-%s", merchant)})
		if err != nil {
			return err
		}
		if _, err := user.LogBatch(ctx, gen.Transactions(schema, 30, 4)); err != nil {
			return err
		}
		fmt.Printf("merchant %d (%s): 30 transaction events logged\n", i+1, merchant)
	}

	// The regulator audits the combined activity.
	reg, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: "regulator", TicketID: "T-REG", Ops: []dla.Op{dla.OpRead}})
	if err != nil {
		return err
	}
	defer reg.Close() //nolint:errcheck
	n, err := reg.Aggregate(ctx, "*", dla.AggCount, "")
	if err != nil {
		return err
	}
	fmt.Printf("\nregulator: %v events across all merchants\n", n)

	udpVolume, err := reg.Aggregate(ctx, `protocl = "UDP"`, dla.AggSum, "C2")
	if err != nil {
		return err
	}
	fmt.Printf("regulator: total C2 volume over UDP: %.2f\n", udpVolume)

	heavy, err := reg.Query(ctx, `C1 > 950.0`)
	if err != nil {
		return err
	}
	fmt.Printf("regulator: %d suspiciously large C1 events: %v\n", len(heavy), heavy)

	// Cross-organization secure sum (§3.5): the merchants jointly
	// compute their combined private revenue; nobody learns an
	// individual figure, and only the regulator-designated receiver
	// learns the total.
	fmt.Println("\nsecure sum of private per-merchant revenue:")
	revenues := map[string]*big.Int{
		"m-acme":    big.NewInt(1_250_000),
		"m-globex":  big.NewInt(2_830_000),
		"m-initech": big.NewInt(640_000),
	}
	parties := []string{"m-acme", "m-globex", "m-initech"}
	net := dla.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := make(map[string]*dla.Mailbox, len(parties)+1)
	for _, p := range append([]string{}, parties...) {
		ep, err := net.Endpoint(p)
		if err != nil {
			return err
		}
		mbs[p] = dla.NewMailbox(ep)
		defer mbs[p].Close() //nolint:errcheck
	}
	cfg := dla.SumConfig{
		P:         big.NewInt(2305843009213693951), // 2^61-1
		Parties:   parties,
		K:         2,
		Receivers: []string{"m-acme"},
		Session:   "revenue-2026",
	}
	var (
		wg    sync.WaitGroup
		total *big.Int
	)
	for _, p := range parties {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			res, err := dla.SecureSum(ctx, mbs[p], cfg, revenues[p])
			if err != nil {
				log.Printf("%s: %v", p, err)
				return
			}
			if res != nil {
				total = res
			}
		}(p)
	}
	wg.Wait()
	fmt.Printf("combined revenue (individuals stay private): %v\n", total)

	// Blind-TTP ranking (§3.3): who is the largest merchant? A fourth
	// node acts as blind TTP; it sees only monotone-transformed values.
	fmt.Println("\nblind ranking of merchants by revenue:")
	ttpEp, err := net.Endpoint("ttp")
	if err != nil {
		return err
	}
	ttpMB := dla.NewMailbox(ttpEp)
	defer ttpMB.Close() //nolint:errcheck
	rankCfg := dla.RankConfig{
		Holders:  parties,
		TTP:      "ttp",
		MaxValue: big.NewInt(10_000_000),
		Session:  "rank-2026",
	}
	var rankRes *dla.RankResult
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := dla.ServeRank(ctx, ttpMB, rankCfg); err != nil {
			log.Printf("ttp: %v", err)
		}
	}()
	for _, p := range parties {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			res, err := dla.Rank(ctx, mbs[p], rankCfg, revenues[p])
			if err != nil {
				log.Printf("%s: %v", p, err)
				return
			}
			if p == "m-acme" {
				rankRes = res
			}
		}(p)
	}
	wg.Wait()
	if rankRes != nil {
		fmt.Printf("largest merchant: %s, smallest: %s, ranks: %v\n",
			rankRes.MaxHolder, rankRes.MinHolder, rankRes.Rank)
	}
	return nil
}
