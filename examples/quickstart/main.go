// Quickstart: deploy a four-node DLA cluster in memory, log the paper's
// Table 1 event records, run confidential auditing queries, and verify
// log integrity — the whole Figure 2 architecture through the public
// pkg/dla API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"confaudit/pkg/dla"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The paper's example: 12-attribute schema partitioned over four DLA
	// nodes P0..P3 (Tables 2-5).
	ex, err := dla.NewPaperExample()
	if err != nil {
		return err
	}
	cluster, err := dla.Deploy(dla.ClusterOptions{Partition: ex.Partition})
	if err != nil {
		return err
	}
	defer cluster.Close() //nolint:errcheck
	fmt.Printf("deployed DLA cluster: %v\n", cluster.Roster())

	// An application node logs the Table 1 records. Each record is
	// fragmented so no single DLA node ever sees it whole.
	user, err := dla.Connect(ctx, cluster, dla.SessionConfig{ID: "u0", TicketID: "T1"})
	if err != nil {
		return err
	}
	defer user.Close() //nolint:errcheck
	for _, rec := range ex.Records {
		g, err := user.Log(ctx, rec.Values)
		if err != nil {
			return err
		}
		fmt.Printf("logged record under glsn %s\n", g)
	}

	// A third-party auditor runs confidential queries: it learns which
	// records match (by glsn) and aggregate statistics, never the raw
	// fragments.
	auditor, err := dla.Connect(ctx, cluster, dla.SessionConfig{
		ID:       "auditor",
		TicketID: "TA",
		Ops:      []dla.Op{dla.OpRead},
	})
	if err != nil {
		return err
	}
	defer auditor.Close() //nolint:errcheck
	matches, session, cert, err := auditor.QueryCertified(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		return err
	}
	fmt.Printf("UDP events by U1: %v\n", matches)
	// Every DLA node responsible for a subquery countersigned the
	// result; the auditor verifies the certificate against the cluster
	// public keys, so no single node can forge an audit answer.
	if err := dla.VerifyResult(cluster.PeerKeys(), session, matches, cert); err != nil {
		return err
	}
	fmt.Printf("result certified by %d DLA node(s)\n", len(cert.Sigs))

	total, err := auditor.Aggregate(ctx, `Tid = "T1100265"`, dla.AggSum, "C2")
	if err != nil {
		return err
	}
	fmt.Printf("total C2 volume of transaction T1100265: %.2f\n", total)

	// Transaction conformance against its specification set R_T
	// (paper eq. 2): every event must satisfy each rule.
	txn, err := auditor.CheckTransaction(ctx, "Tid", "T1100265", []string{
		`C1 >= 18`,        // satisfied by every event
		`protocl = "UDP"`, // violated by the TCP event
	})
	if err != nil {
		return err
	}
	fmt.Printf("transaction T1100265 conforms to R_T: %v\n", txn.Conforms())
	for rule, violations := range txn.Violations {
		if len(violations) > 0 {
			fmt.Printf("  rule %q violated by %v\n", rule, violations)
		}
	}

	// Any DLA node can verify log integrity by circulating one-way
	// accumulator values around the cluster (no fragments move).
	report, err := cluster.CheckIntegrity(ctx, "P0")
	if err != nil {
		return err
	}
	fmt.Printf("integrity sweep: %d records checked, clean=%v\n", report.Checked, report.Clean())

	// Simulate a compromised node and catch it.
	p2, _ := cluster.Deployment().Node("P2")
	p2.TamperFragment(matches[0], "Tid", dla.String("T-FORGED"))
	report, err = cluster.CheckIntegrity(ctx, "P0")
	if err != nil {
		return err
	}
	fmt.Printf("after tampering on P2: corrupted=%v\n", report.Corrupted)
	return nil
}
