// Quickstart: deploy a four-node DLA cluster in memory, log the paper's
// Table 1 event records, run confidential auditing queries, and verify
// log integrity — the whole Figure 2 architecture in ~60 lines of API.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"confaudit/internal/audit"
	"confaudit/internal/core"
	"confaudit/internal/logmodel"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// The paper's example: 12-attribute schema partitioned over four DLA
	// nodes P0..P3 (Tables 2-5).
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		return err
	}
	dla, err := core.Deploy(core.Options{Partition: ex.Partition})
	if err != nil {
		return err
	}
	defer dla.Close() //nolint:errcheck
	fmt.Printf("deployed DLA cluster: %v\n", dla.Roster())

	// An application node logs the Table 1 records. Each record is
	// fragmented so no single DLA node ever sees it whole.
	user, err := dla.NewUser(ctx, "u0", "T1")
	if err != nil {
		return err
	}
	for _, rec := range ex.Records {
		g, err := user.Log(ctx, rec.Values)
		if err != nil {
			return err
		}
		fmt.Printf("logged record under glsn %s\n", g)
	}

	// A third-party auditor runs confidential queries: it learns which
	// records match (by glsn) and aggregate statistics, never the raw
	// fragments.
	auditor, err := dla.NewAuditor(ctx, "auditor", "TA")
	if err != nil {
		return err
	}
	matches, session, cert, err := auditor.QueryCertified(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		return err
	}
	fmt.Printf("UDP events by U1: %v\n", matches)
	// Every DLA node responsible for a subquery countersigned the
	// result; the auditor verifies the certificate against the cluster
	// public keys, so no single node can forge an audit answer.
	if err := audit.VerifyResult(dla.Bootstrap().PeerKeys, session, matches, cert); err != nil {
		return err
	}
	fmt.Printf("result certified by %d DLA node(s)\n", len(cert.Sigs))

	total, err := auditor.Aggregate(ctx, `Tid = "T1100265"`, audit.AggSum, "C2")
	if err != nil {
		return err
	}
	fmt.Printf("total C2 volume of transaction T1100265: %.2f\n", total)

	// Transaction conformance against its specification set R_T
	// (paper eq. 2): every event must satisfy each rule.
	txn, err := auditor.CheckTransaction(ctx, "Tid", "T1100265", []string{
		`C1 >= 18`,        // satisfied by every event
		`protocl = "UDP"`, // violated by the TCP event
	})
	if err != nil {
		return err
	}
	fmt.Printf("transaction T1100265 conforms to R_T: %v\n", txn.Conforms())
	for rule, violations := range txn.Violations {
		if len(violations) > 0 {
			fmt.Printf("  rule %q violated by %v\n", rule, violations)
		}
	}

	// Any DLA node can verify log integrity by circulating one-way
	// accumulator values around the cluster (no fragments move).
	report, err := dla.CheckIntegrity(ctx, "P0")
	if err != nil {
		return err
	}
	fmt.Printf("integrity sweep: %d records checked, clean=%v\n", report.Checked, report.Clean())

	// Simulate a compromised node and catch it.
	p2, _ := dla.Node("P2")
	p2.TamperFragment(matches[0], "Tid", logmodel.String("T-FORGED"))
	report, err = dla.CheckIntegrity(ctx, "P0")
	if err != nil {
		return err
	}
	fmt.Printf("after tampering on P2: corrupted=%v\n", report.Corrupted)
	return nil
}
