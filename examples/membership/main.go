// Membership: the paper's §4.2 anonymous-yet-authenticated DLA
// membership (Figures 6 and 7). Four nodes obtain blind credential
// tokens from a credential authority (which never learns who they are),
// then join the cluster one by one through the PP/SC/RE three-way
// handshake, building an undeniable evidence chain. The example then
// shows both enforcement mechanisms: a node that already passed its
// invite authority cannot invite again, and a fabricated double-invite
// is detected as misconduct from the countersigned evidence alone.
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"sync"
	"time"

	"confaudit/pkg/dla"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// The credential authority.
	ca, err := dla.NewCredentialAuthority(rand.Reader, 1024)
	if err != nil {
		return err
	}
	fmt.Println("credential authority ready")

	// Four prospective DLA nodes obtain blind tokens. The CA signs
	// blinded requests: it can meter admission but cannot link a token
	// to the pseudonym that later appears in the chain.
	names := []string{"P0", "P1", "P2", "P3"}
	members := make([]*dla.Member, len(names))
	for i := range names {
		m, err := dla.NewMember(rand.Reader, 1024, ca.Public(), ca.SignBlinded)
		if err != nil {
			return err
		}
		members[i] = m
		fmt.Printf("%s: anonymous credential issued\n", names[i])
	}

	// The network and one mailbox per node.
	net := dla.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := make([]*dla.Mailbox, len(names))
	for i, n := range names {
		ep, err := net.Endpoint(n)
		if err != nil {
			return err
		}
		mbs[i] = dla.NewMailbox(ep)
		defer mbs[i].Close() //nolint:errcheck
	}

	// Build the chain: P0 founds it, each member invites the next.
	chain := &dla.EvidenceChain{CA: ca.Public()}
	for i := 1; i < len(members); i++ {
		session := fmt.Sprintf("join-%d", i)
		var (
			wg       sync.WaitGroup
			invPiece *dla.EvidencePiece
			invErr   error
			joinErr  error
		)
		wg.Add(2)
		go func(inv int) {
			defer wg.Done()
			invPiece, invErr = dla.Invite(ctx, mbs[inv], session, members[inv], chain,
				names[inv+1], "store fragments, serve audits, join integrity ring")
		}(i - 1)
		go func(joiner int) {
			defer wg.Done()
			_, joinErr = dla.Join(ctx, mbs[joiner], session, members[joiner],
				names[joiner-1], []string{"logging", "auditing", "integrity"})
		}(i)
		wg.Wait()
		if invErr != nil {
			return fmt.Errorf("invite %d: %w", i, invErr)
		}
		if joinErr != nil {
			return fmt.Errorf("join %d: %w", i, joinErr)
		}
		chain.Pieces = append(chain.Pieces, *invPiece)
		fmt.Printf("%s joined via PP/SC/RE handshake (piece %d)\n", names[i], i-1)
	}

	// Everyone can verify the whole chain.
	if err := chain.Verify(); err != nil {
		return fmt.Errorf("chain verification failed: %w", err)
	}
	fmt.Printf("\nevidence chain verified: %d members, authority at the tail\n", len(chain.Members()))

	// Enforcement 1: P1 already passed its authority to P2; a second
	// invite by P1 is refused client-side.
	rogue := &dla.EvidenceChain{CA: ca.Public(), Pieces: chain.Pieces[:1]} // pretend tail is P1
	shortCtx, shortCancel := context.WithTimeout(ctx, 2*time.Second)
	_, err = dla.Invite(shortCtx, mbs[0], "rogue", members[0], rogue, "P3", "rogue proposal")
	shortCancel()
	if err != nil {
		fmt.Printf("enforcement: stale inviter refused (%v)\n", err)
	}

	// Enforcement 2: even a fabricated fork is self-incriminating — two
	// countersigned pieces with one inviter expose the offender.
	forkA := chain.Pieces[1]
	forkB := chain.Pieces[1]
	forkB.Joiner = members[0].Pseudonym() // fabricated second invite
	if m := dla.DetectDoubleInvite([]dla.EvidencePiece{forkA, forkB}); m != nil {
		fmt.Println("enforcement: double invite detected; offender's pseudonym exposed by its own signatures")
	}
	return nil
}
