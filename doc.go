// Package confaudit is a from-scratch Go implementation of the
// confidential distributed logging and auditing (DLA) system of
// "On the Confidential Auditing of Distributed Computing Systems"
// (Shen, Liu, Zhao — Texas A&M TR 2003-8-2 / ICDCS 2004).
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); examples/ holds runnable applications, cmd/ the
// node daemon (dlad), client (dlactl), and the paper-artifact
// regenerator (benchtab). The benchmarks in bench_test.go regenerate
// the measurements recorded in EXPERIMENTS.md.
package confaudit
