// Benchmarks regenerating every paper artifact's cost profile — one
// bench (or bench family) per table, figure, and quantitative claim.
// See EXPERIMENTS.md for the artifact index and recorded results, and
// cmd/benchtab for the content reproductions.
package confaudit_test

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"
	"sync"
	"testing"
	"time"

	"confaudit/internal/audit"
	"confaudit/internal/cluster"
	"confaudit/internal/core"
	"confaudit/internal/crypto/blind"
	"confaudit/internal/crypto/commutative"
	"confaudit/internal/evidence"
	"confaudit/internal/integrity"
	"confaudit/internal/logmodel"
	"confaudit/internal/mathx"
	"confaudit/internal/metrics"
	"confaudit/internal/query"
	"confaudit/internal/smc/circuit"
	"confaudit/internal/smc/compare"
	"confaudit/internal/smc/garbled"
	"confaudit/internal/smc/intersect"
	"confaudit/internal/smc/sum"
	"confaudit/internal/telemetry"
	"confaudit/internal/ticket"
	"confaudit/internal/transport"
	"confaudit/internal/workload"
)

func paperExample(b *testing.B) *logmodel.PaperExample {
	b.Helper()
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		b.Fatal(err)
	}
	return ex
}

// --- Tables 1-5: fragmentation ---

// BenchmarkTables1to5Fragmentation measures splitting a Table 1 record
// into the Tables 2-5 fragments and reassembling it.
func BenchmarkTables1to5Fragmentation(b *testing.B) {
	ex := paperExample(b)
	rec := ex.Records[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frags := ex.Partition.Split(rec)
		list := make([]logmodel.Fragment, 0, len(frags))
		for _, f := range frags {
			list = append(list, f)
		}
		if _, err := logmodel.Reassemble(list); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 6: access control ---

// BenchmarkTable6AccessControl measures the per-glsn grant + authorize
// path of the replicated access-control table.
func BenchmarkTable6AccessControl(b *testing.B) {
	ca, err := blind.NewAuthority(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	iss := ticket.NewIssuer(ca)
	tbl := ticket.NewAccessTable(iss.Public())
	tk, err := iss.Issue("T1", "u0", ticket.OpWrite, ticket.OpRead)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Register(tk); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := logmodel.GLSN(i + 1)
		if err := tbl.Grant("T1", g); err != nil {
			b.Fatal(err)
		}
		if err := tbl.Authorize("T1", ticket.OpRead, g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 1 & 2: centralized vs DLA query ---

type dlaRig struct {
	d       *core.Deployment
	auditor *audit.Auditor
}

func deployLoaded(b *testing.B, records int) *dlaRig {
	b.Helper()
	ex := paperExample(b)
	d, err := core.Deploy(core.Options{Partition: ex.Partition})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { d.Close() }) //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	user, err := d.NewUser(ctx, "bench-user", "TB")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		rec := ex.Records[i%len(ex.Records)]
		if _, err := user.Log(ctx, rec.Values); err != nil {
			b.Fatal(err)
		}
	}
	auditor, err := d.NewAuditor(ctx, "bench-aud", "TBA")
	if err != nil {
		b.Fatal(err)
	}
	return &dlaRig{d: d, auditor: auditor}
}

// BenchmarkFigure1CentralizedQuery is the single-trusted-auditor
// baseline: criteria evaluated directly over complete records.
func BenchmarkFigure1CentralizedQuery(b *testing.B) {
	ex := paperExample(b)
	c := audit.NewCentralized()
	for i := 0; i < 100; i++ {
		rec := ex.Records[i%len(ex.Records)].Clone()
		rec.GLSN = logmodel.GLSN(i + 1)
		c.Store(rec)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(`protocl = "UDP" AND id = "U1"`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2DLAQuery is the same criteria through the full
// distributed confidential pipeline (normalization, per-node subqueries,
// secure set intersection of the conjunction).
func BenchmarkFigure2DLAQuery(b *testing.B) {
	rig := deployLoaded(b, 100)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.auditor.Query(ctx, `protocl = "UDP" AND id = "U1"`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2DLAAggregate measures the confidential statistics
// path (sum over matched records at the attribute owner).
func BenchmarkFigure2DLAAggregate(b *testing.B) {
	rig := deployLoaded(b, 100)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.auditor.Aggregate(ctx, `protocl = "UDP"`, audit.AggSum, "C2"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: query normalization and planning ---

func BenchmarkFigure3NormalizeClassify(b *testing.B) {
	ex := paperExample(b)
	src := `C1 > 30 AND Tid = "T1100265" AND (time = "x" OR id = "U1") AND C2 < C1`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		expr, err := query.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		n, err := query.Normalize(expr)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := query.Classify(n, ex.Partition); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: secure set intersection ---

func BenchmarkFigure4Intersection(b *testing.B) {
	ctx := context.Background()
	sets := map[string][][]byte{
		"P1": {[]byte("c"), []byte("d"), []byte("e")},
		"P2": {[]byte("d"), []byte("e"), []byte("f")},
		"P3": {[]byte("e"), []byte("f"), []byte("g")},
	}
	ring := []string{"P1", "P2", "P3"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := transport.NewMemNetwork()
		cfg := intersect.Config{
			Group:     mathx.Oakley768,
			Ring:      ring,
			Receivers: []string{"P1"},
			Session:   fmt.Sprintf("fig4-%d", i),
		}
		var wg sync.WaitGroup
		for _, node := range ring {
			ep, err := net.Endpoint(node)
			if err != nil {
				b.Fatal(err)
			}
			mb := transport.NewMailbox(ep)
			wg.Add(1)
			go func(node string, mb *transport.Mailbox) {
				defer wg.Done()
				defer mb.Close() //nolint:errcheck
				if _, err := intersect.Run(ctx, mb, cfg, sets[node]); err != nil {
					b.Error(err)
				}
			}(node, mb)
		}
		wg.Wait()
		net.Close() //nolint:errcheck
	}
}

// --- Figure 5 / §3.2: relaxed equality; claim C1 classical baseline ---

func benchEqualityRig(b *testing.B) (map[string]*transport.Mailbox, func()) {
	b.Helper()
	net := transport.NewMemNetwork()
	mbs := make(map[string]*transport.Mailbox, 3)
	for _, id := range []string{"A", "B", "T"} {
		ep, err := net.Endpoint(id)
		if err != nil {
			b.Fatal(err)
		}
		mbs[id] = transport.NewMailbox(ep)
	}
	return mbs, func() {
		for _, mb := range mbs {
			mb.Close() //nolint:errcheck
		}
		net.Close() //nolint:errcheck
	}
}

// BenchmarkClaimC1RelaxedEquality measures the §3.2 randomized-mapping
// equality through a blind TTP.
func BenchmarkClaimC1RelaxedEquality(b *testing.B) {
	mbs, cleanup := benchEqualityRig(b)
	defer cleanup()
	ctx := context.Background()
	v := big.NewInt(123456)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := compare.EqualityConfig{
			P:       big.NewInt(2305843009213693951),
			Holders: [2]string{"A", "B"},
			TTP:     "T",
			Session: fmt.Sprintf("eq-%d", i),
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); compare.ServeEqual(ctx, mbs["T"], cfg) }() //nolint:errcheck
		go func() { defer wg.Done(); compare.Equal(ctx, mbs["A"], cfg, v) }()   //nolint:errcheck
		go func() { defer wg.Done(); compare.Equal(ctx, mbs["B"], cfg, v) }()   //nolint:errcheck
		wg.Wait()
	}
}

// BenchmarkClaimC1GarbledEquality is the classical zero-disclosure
// counterpart: a 32-bit equality circuit garbled and evaluated over
// oblivious transfer. The ratio to the relaxed bench above is the
// paper's "excessive overheads" claim, measured.
func BenchmarkClaimC1GarbledEquality(b *testing.B) {
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	gEp, err := net.Endpoint("G")
	if err != nil {
		b.Fatal(err)
	}
	eEp, err := net.Endpoint("E")
	if err != nil {
		b.Fatal(err)
	}
	gMB, eMB := transport.NewMailbox(gEp), transport.NewMailbox(eEp)
	defer gMB.Close() //nolint:errcheck
	defer eMB.Close() //nolint:errcheck
	ctx := context.Background()
	c := circuit.Equality(32)
	x := circuit.Uint64ToBits(123456, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := garbled.Config{Group: mathx.Oakley768, Garbler: "G", Evaluator: "E", Session: fmt.Sprintf("gc-%d", i)}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); garbled.Garble(ctx, gMB, cfg, c, x) }()   //nolint:errcheck
		go func() { defer wg.Done(); garbled.Evaluate(ctx, eMB, cfg, c, x) }() //nolint:errcheck
		wg.Wait()
	}
}

// --- Claim C2: blind-TTP ranking ---

func BenchmarkClaimC2RankTTP(b *testing.B) {
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ids := []string{"A", "B", "C", "T"}
	mbs := make(map[string]*transport.Mailbox, len(ids))
	for _, id := range ids {
		ep, err := net.Endpoint(id)
		if err != nil {
			b.Fatal(err)
		}
		mbs[id] = transport.NewMailbox(ep)
		defer mbs[id].Close() //nolint:errcheck
	}
	ctx := context.Background()
	values := map[string]*big.Int{"A": big.NewInt(3), "B": big.NewInt(1), "C": big.NewInt(2)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := compare.RankConfig{
			Holders:  []string{"A", "B", "C"},
			TTP:      "T",
			MaxValue: big.NewInt(1000),
			Session:  fmt.Sprintf("rank-%d", i),
		}
		var wg sync.WaitGroup
		wg.Add(4)
		go func() { defer wg.Done(); compare.ServeRank(ctx, mbs["T"], cfg) }() //nolint:errcheck
		for _, h := range cfg.Holders {
			go func(h string) { defer wg.Done(); compare.Rank(ctx, mbs[h], cfg, values[h]) }(h) //nolint:errcheck
		}
		wg.Wait()
	}
}

// --- Claim C3: secure sum scaling ---

func BenchmarkClaimC3SecureSum(b *testing.B) {
	for _, parties := range []int{3, 5, 9} {
		b.Run(fmt.Sprintf("parties=%d", parties), func(b *testing.B) {
			net := transport.NewMemNetwork()
			defer net.Close() //nolint:errcheck
			ids := make([]string, parties)
			mbs := make(map[string]*transport.Mailbox, parties)
			for i := range ids {
				ids[i] = fmt.Sprintf("P%d", i)
				ep, err := net.Endpoint(ids[i])
				if err != nil {
					b.Fatal(err)
				}
				mbs[ids[i]] = transport.NewMailbox(ep)
				defer mbs[ids[i]].Close() //nolint:errcheck
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := sum.Config{
					P:         big.NewInt(2305843009213693951),
					Parties:   ids,
					K:         parties/2 + 1,
					Receivers: []string{ids[0]},
					Session:   fmt.Sprintf("s-%d", i),
				}
				var wg sync.WaitGroup
				for j, id := range ids {
					wg.Add(1)
					go func(j int, id string) {
						defer wg.Done()
						sum.Run(ctx, mbs[id], cfg, big.NewInt(int64(j))) //nolint:errcheck
					}(j, id)
				}
				wg.Wait()
			}
		})
	}
}

// --- Figures 6 & 7: evidence chain ---

func BenchmarkFigure7JoinHandshake(b *testing.B) {
	ca, err := blind.NewAuthority(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	inviter, err := evidence.NewMember(rand.Reader, 1024, ca.Public(), ca.SignBlinded)
	if err != nil {
		b.Fatal(err)
	}
	joiner, err := evidence.NewMember(rand.Reader, 1024, ca.Public(), ca.SignBlinded)
	if err != nil {
		b.Fatal(err)
	}
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	iEp, err := net.Endpoint("I")
	if err != nil {
		b.Fatal(err)
	}
	jEp, err := net.Endpoint("J")
	if err != nil {
		b.Fatal(err)
	}
	iMB, jMB := transport.NewMailbox(iEp), transport.NewMailbox(jEp)
	defer iMB.Close() //nolint:errcheck
	defer jMB.Close() //nolint:errcheck
	ctx := context.Background()
	chain := &evidence.Chain{CA: ca.Public()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		session := fmt.Sprintf("join-%d", i)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			evidence.Invite(ctx, iMB, session, inviter, chain, "J", "serve") //nolint:errcheck
		}()
		go func() {
			defer wg.Done()
			evidence.Join(ctx, jMB, session, joiner, "I", []string{"svc"}) //nolint:errcheck
		}()
		wg.Wait()
	}
}

func BenchmarkFigure6ChainVerify(b *testing.B) {
	ca, err := blind.NewAuthority(rand.Reader, 1024)
	if err != nil {
		b.Fatal(err)
	}
	// Build a 4-member chain once.
	members := make([]*evidence.Member, 4)
	for i := range members {
		if members[i], err = evidence.NewMember(rand.Reader, 1024, ca.Public(), ca.SignBlinded); err != nil {
			b.Fatal(err)
		}
	}
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := make([]*transport.Mailbox, 4)
	for i := range mbs {
		ep, err := net.Endpoint(fmt.Sprintf("N%d", i))
		if err != nil {
			b.Fatal(err)
		}
		mbs[i] = transport.NewMailbox(ep)
		defer mbs[i].Close() //nolint:errcheck
	}
	ctx := context.Background()
	chain := &evidence.Chain{CA: ca.Public()}
	for i := 1; i < 4; i++ {
		session := fmt.Sprintf("bj-%d", i)
		var wg sync.WaitGroup
		var piece *evidence.Piece
		wg.Add(2)
		go func(inv int) {
			defer wg.Done()
			piece, _ = evidence.Invite(ctx, mbs[inv], session, members[inv], chain, fmt.Sprintf("N%d", inv+1), "serve") //nolint:errcheck
		}(i - 1)
		go func(j int) {
			defer wg.Done()
			evidence.Join(ctx, mbs[j], session, members[j], fmt.Sprintf("N%d", j-1), []string{"svc"}) //nolint:errcheck
		}(i)
		wg.Wait()
		if piece == nil {
			b.Fatal("join failed")
		}
		chain.Pieces = append(chain.Pieces, *piece)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := chain.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Eqs. 10-13: confidentiality metrics ---

func BenchmarkEq10to13ConfidentialitySweep(b *testing.B) {
	schema, err := workload.ECommerceSchema(4)
	if err != nil {
		b.Fatal(err)
	}
	part, err := workload.RoundRobinPartition(schema, 4)
	if err != nil {
		b.Fatal(err)
	}
	raw := workload.New(3).Transactions(schema, 50, 5)
	recs := make([]logmodel.Record, len(raw))
	for i, vals := range raw {
		recs[i] = logmodel.Record{GLSN: logmodel.GLSN(i + 1), Values: vals}
	}
	mix := workload.QueryMix(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.DLA(part, recs, mix); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §4.1: integrity circulation scaling ---

func BenchmarkIntegrityCirculation(b *testing.B) {
	for _, nodes := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			benchIntegrity(b, nodes)
		})
	}
}

type benchStore struct {
	frag   logmodel.Fragment
	digest *big.Int
}

func (s *benchStore) Fragment(logmodel.GLSN) (logmodel.Fragment, bool) { return s.frag, true }
func (s *benchStore) Digest(logmodel.GLSN) (*big.Int, bool)            { return s.digest, true }

func benchIntegrity(b *testing.B, nodes int) {
	boot, err := cluster.NewBootstrap(rand.Reader, mustPart(b, nodes), mathx.Oakley768, cluster.BootstrapOptions{})
	if err != nil {
		b.Fatal(err)
	}
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ring := boot.Roster
	stores := make(map[string]*benchStore, nodes)
	frags := make([][]byte, 0, nodes)
	for _, id := range ring {
		frag := logmodel.Fragment{GLSN: 1, Node: id, Values: map[logmodel.Attr]logmodel.Value{
			logmodel.Attr("a-" + id): logmodel.Int(1),
		}}
		stores[id] = &benchStore{frag: frag}
		frags = append(frags, frag.Canonical())
	}
	digest := boot.AccParams.AccumulateAll(frags)
	for _, s := range stores {
		s.digest = digest
	}
	mbs := make(map[string]*transport.Mailbox, nodes)
	for _, id := range ring {
		ep, err := net.Endpoint(id)
		if err != nil {
			b.Fatal(err)
		}
		mbs[id] = transport.NewMailbox(ep)
		defer mbs[id].Close()                                              //nolint:errcheck
		go integrity.Serve(ctx, mbs[id], ring, boot.AccParams, stores[id]) //nolint:errcheck
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := integrity.Check(ctx, mbs[ring[0]], ring, boot.AccParams, stores[ring[0]], 1); err != nil {
			b.Fatal(err)
		}
	}
}

func mustPart(b *testing.B, nodes int) *logmodel.Partition {
	b.Helper()
	attrs := make([]logmodel.Attr, nodes)
	nodeIDs := make([]string, nodes)
	sets := make(map[string][]logmodel.Attr, nodes)
	for i := 0; i < nodes; i++ {
		nodeIDs[i] = fmt.Sprintf("P%d", i)
		attrs[i] = logmodel.Attr("a-" + nodeIDs[i])
		sets[nodeIDs[i]] = []logmodel.Attr{attrs[i]}
	}
	schema, err := logmodel.NewSchema(attrs)
	if err != nil {
		b.Fatal(err)
	}
	part, err := logmodel.NewPartition(schema, nodeIDs, sets)
	if err != nil {
		b.Fatal(err)
	}
	return part
}

// --- Logging throughput: the full Figure 2 write path ---

// BenchmarkClusterLogThroughput measures one complete record write:
// quorum-agreed glsn assignment, vertical fragmentation, accumulator
// digest, and fragment distribution with acks.
func BenchmarkClusterLogThroughput(b *testing.B) {
	ex := paperExample(b)
	d, err := core.Deploy(core.Options{Partition: ex.Partition})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	ctx := context.Background()
	user, err := d.NewUser(ctx, "tp-user", "TTP1")
	if err != nil {
		b.Fatal(err)
	}
	values := ex.Records[0].Values
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := user.Log(ctx, values); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppenderThroughput measures the streaming ingest path: b.N
// records staged through one Appender (batched, pipelined quorum
// rounds, digest-exponent shipping) including the final drain, so the
// per-record figure amortizes glsn rounds and store fan-out the way a
// real producer sees them. Compare with BenchmarkClusterLogThroughput,
// the synchronous one-round-per-record write.
func BenchmarkAppenderThroughput(b *testing.B) {
	ex := paperExample(b)
	d, err := core.Deploy(core.Options{Partition: ex.Partition})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close() //nolint:errcheck
	ctx := context.Background()
	user, err := d.NewUser(ctx, "ap-user", "TAP1")
	if err != nil {
		b.Fatal(err)
	}
	values := ex.Records[0].Values
	b.ReportAllocs()
	b.ResetTimer()
	ap, err := user.NewAppender(ctx, cluster.AppendOptions{MaxBatchRecords: 256})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := ap.Append(ctx, values); err != nil {
			b.Fatal(err)
		}
	}
	if err := ap.Close(ctx); err != nil {
		b.Fatal(err)
	}
}

// --- Query-shape sweep: cost by criteria structure ---

// BenchmarkQueryShapes measures the end-to-end DLA query cost for the
// structurally distinct criteria classes the engine supports: a single
// local predicate, a multi-node conjunction, a cross-node disjunction
// (secure union), a cross equality (two-party ∩s on glsn|value), and a
// cross comparison (blind-TTP batch compare).
func BenchmarkQueryShapes(b *testing.B) {
	shapes := []struct {
		name     string
		criteria string
	}{
		{"local", `C1 > 30`},
		{"conjunction-3-nodes", `Tid = "T1100265" AND C1 < 30 AND id = "U1"`},
		{"cross-union", `id = "U3" OR C1 = 20`},
		{"cross-equality", `id = C3`},
		{"cross-compare", `C1 < C2`},
	}
	rig := deployLoaded(b, 25)
	ctx := context.Background()
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rig.auditor.Query(ctx, s.criteria); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Telemetry overhead: observability cost on the query hot path ---

// BenchmarkTelemetryOverhead measures the end-to-end conjunction-query
// cost with the observability layer recording (spans, counters, leak
// ledger) versus fully disabled, keeping the per-query price of the
// zero-plaintext telemetry an auditable artifact row.
func BenchmarkTelemetryOverhead(b *testing.B) {
	rig := deployLoaded(b, 25)
	ctx := context.Background()
	const criteria = `Tid = "T1100265" AND C1 < 30 AND id = "U1"`
	for _, mode := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			telemetry.SetEnabled(mode.on)
			defer telemetry.SetEnabled(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rig.auditor.Query(ctx, criteria); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Intersection scaling with party count ---

func BenchmarkIntersectParties(b *testing.B) {
	for _, parties := range []int{2, 3, 5, 8} {
		b.Run(fmt.Sprintf("parties=%d", parties), func(b *testing.B) {
			ring := make([]string, parties)
			sets := make(map[string][][]byte, parties)
			for i := range ring {
				ring[i] = fmt.Sprintf("P%d", i)
				s := make([][]byte, 8)
				for j := range s {
					s[j] = []byte(fmt.Sprintf("el-%02d", j))
				}
				sets[ring[i]] = s
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net := transport.NewMemNetwork()
				cfg := intersect.Config{
					Group:     mathx.Oakley768,
					Ring:      ring,
					Receivers: []string{ring[0]},
					Session:   fmt.Sprintf("ip-%d", i),
				}
				var wg sync.WaitGroup
				for _, node := range ring {
					ep, err := net.Endpoint(node)
					if err != nil {
						b.Fatal(err)
					}
					mb := transport.NewMailbox(ep)
					wg.Add(1)
					go func(node string, mb *transport.Mailbox) {
						defer wg.Done()
						defer mb.Close() //nolint:errcheck
						if _, err := intersect.Run(ctx, mb, cfg, sets[node]); err != nil {
							b.Error(err)
						}
					}(node, mb)
				}
				wg.Wait()
				net.Close() //nolint:errcheck
			}
		})
	}
}

// --- Transaction conformance auditing ---

func BenchmarkTransactionConformance(b *testing.B) {
	rig := deployLoaded(b, 25)
	ctx := context.Background()
	rules := []string{`C1 >= 18`, `protocl = "UDP"`}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.auditor.CheckTransaction(ctx, "Tid", "T1100265", rules); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: commutative-group size (design choice in DESIGN.md) ---

func BenchmarkAblationGroupSize(b *testing.B) {
	for _, bits := range []int{768, 1024, 1536, 2048} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			g, err := mathx.StandardGroup(bits)
			if err != nil {
				b.Fatal(err)
			}
			k, err := commutative.NewPHKey(rand.Reader, g)
			if err != nil {
				b.Fatal(err)
			}
			m := g.HashToQR([]byte("ablation"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := k.EncryptInt(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: secret-sharing threshold k (design choice) ---

func BenchmarkAblationSumThreshold(b *testing.B) {
	const parties = 8
	for _, k := range []int{2, 5, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			net := transport.NewMemNetwork()
			defer net.Close() //nolint:errcheck
			ids := make([]string, parties)
			mbs := make(map[string]*transport.Mailbox, parties)
			for i := range ids {
				ids[i] = fmt.Sprintf("P%d", i)
				ep, err := net.Endpoint(ids[i])
				if err != nil {
					b.Fatal(err)
				}
				mbs[ids[i]] = transport.NewMailbox(ep)
				defer mbs[ids[i]].Close() //nolint:errcheck
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := sum.Config{
					P:         big.NewInt(2305843009213693951),
					Parties:   ids,
					K:         k,
					Receivers: []string{ids[0]},
					Session:   fmt.Sprintf("ka-%d", i),
				}
				var wg sync.WaitGroup
				for j, id := range ids {
					wg.Add(1)
					go func(j int, id string) {
						defer wg.Done()
						sum.Run(ctx, mbs[id], cfg, big.NewInt(int64(j))) //nolint:errcheck
					}(j, id)
				}
				wg.Wait()
			}
		})
	}
}
