package dla

import (
	"context"
	"strings"
	"testing"
	"time"

	"confaudit/internal/logmodel"
)

func deployExample(t *testing.T) (*Cluster, *logmodel.PaperExample) {
	t.Helper()
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Deploy(ClusterOptions{Partition: ex.Partition})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() }) //nolint:errcheck
	return cl, ex
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSessionEndToEnd(t *testing.T) {
	cl, ex := deployExample(t)
	ctx := testCtx(t)

	s, err := Connect(ctx, cl, SessionConfig{ID: "u0", TicketID: "T1"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck

	glsns, err := s.LogBatch(ctx, recordValues(ex))
	if err != nil {
		t.Fatal(err)
	}
	if len(glsns) != len(ex.Records) {
		t.Fatalf("logged %d records, want %d", len(glsns), len(ex.Records))
	}
	rec, err := s.Read(ctx, glsns[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Values) == 0 {
		t.Fatal("read back an empty record")
	}

	matches, session, cert, err := s.QueryCertified(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("conjunction query found no matches")
	}
	if err := VerifyResult(cl.PeerKeys(), session, matches, cert); err != nil {
		t.Fatalf("certificate did not verify: %v", err)
	}

	n, err := s.Aggregate(ctx, `protocl = "UDP"`, AggCount, "protocl")
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("aggregate count = %v, want > 0", n)
	}

	report, err := cl.CheckIntegrity(ctx, cl.Roster()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("fresh cluster failed integrity sweep: %+v", report)
	}
}

func TestConnectValidatesAndStartsHealth(t *testing.T) {
	cl, _ := deployExample(t)
	ctx := testCtx(t)

	if _, err := Connect(ctx, cl, SessionConfig{ID: "u1"}); err == nil {
		t.Fatal("Connect accepted a config without TicketID")
	}
	if _, err := Connect(ctx, nil, SessionConfig{ID: "u1", TicketID: "T"}); err == nil {
		t.Fatal("Connect accepted a nil cluster")
	}

	s, err := Connect(ctx, cl, SessionConfig{
		ID:       "u1",
		TicketID: "T-health",
		Health:   &HealthConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	hv := s.Health()
	if hv == nil {
		t.Fatal("Health() = nil despite HealthConfig")
	}
	for peer := range hv {
		if !strings.HasPrefix(peer, "P") {
			t.Fatalf("health view tracks unexpected peer %q", peer)
		}
	}
}

func recordValues(ex *logmodel.PaperExample) []map[Attr]Value {
	out := make([]map[Attr]Value, len(ex.Records))
	for i, rec := range ex.Records {
		out[i] = rec.Values
	}
	return out
}
