package dla

import (
	"confaudit/internal/logmodel"
	"confaudit/internal/workload"
)

// Workload vocabulary re-exported so examples and load drivers build
// schemas, partitions, and synthetic event streams without importing
// internal packages.
type (
	// Schema declares a workload's attributes.
	Schema = logmodel.Schema
	// PaperExample is the paper's Tables 1-5 worked example: a
	// 12-attribute schema, its partition over four nodes, and the sample
	// records.
	PaperExample = logmodel.PaperExample
	// Workload generates deterministic synthetic event streams
	// (Transactions, IntrusionEvents) from a seed.
	Workload = workload.Gen
)

// NewPaperExample builds the paper's worked example.
func NewPaperExample() (*PaperExample, error) { return logmodel.NewPaperExample() }

// NewWorkload seeds a deterministic synthetic-event generator.
func NewWorkload(seed uint64) *Workload { return workload.New(seed) }

// ECommerceSchema builds the e-commerce audit schema with the given
// number of application-private ("undefined") attributes.
func ECommerceSchema(undefined int) (*Schema, error) { return workload.ECommerceSchema(undefined) }

// RoundRobinPartition spreads the schema's attributes over n nodes.
func RoundRobinPartition(schema *Schema, n int) (*Partition, error) {
	return workload.RoundRobinPartition(schema, n)
}
