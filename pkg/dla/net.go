package dla

import "confaudit/internal/transport"

// Transport vocabulary re-exported for callers that run the standalone
// secure-multiparty protocols (SecureSum, Rank) or the membership
// handshake outside a deployed cluster.
type (
	// Network hosts endpoints; MemNetwork is the in-process one.
	Network = transport.Network
	// MemNetwork is the in-memory network used by examples and tests.
	MemNetwork = transport.MemNetwork
	// Endpoint is one participant's attachment to a Network.
	Endpoint = transport.Endpoint
	// Mailbox sends and receives protocol messages over an Endpoint.
	Mailbox = transport.Mailbox
)

// NewMemNetwork starts an in-process network.
func NewMemNetwork() *MemNetwork { return transport.NewMemNetwork() }

// NewMailbox wraps an endpoint in a mailbox.
func NewMailbox(ep Endpoint) *Mailbox { return transport.NewMailbox(ep) }
