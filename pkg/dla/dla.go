// Package dla is the public surface of the confidential distributed
// log-auditing system. It wraps the internal cluster client and auditor
// behind a small, stable API: Deploy a cluster (or attach to one an
// operator already runs), Connect a Session, then Log records and run
// confidential queries.
//
//	cl, _ := dla.Deploy(dla.ClusterOptions{Partition: part})
//	defer cl.Close()
//	s, _ := dla.Connect(ctx, cl, dla.SessionConfig{ID: "u0", TicketID: "T1"})
//	defer s.Close()
//	g, _ := s.Log(ctx, map[dla.Attr]dla.Value{"id": dla.String("U1")})
//	matches, _ := s.Query(ctx, `id = "U1"`)
//
// Session.Log is one full quorum round trip per record — right for
// occasional events, wrong for a firehose. Callers with many records in
// hand should use Session.LogBatch (one glsn reservation and one store
// round per node for the whole slice). Callers ingesting a continuous
// stream should open a Session.Appender, which batches concurrent
// Appends client-side, pipelines several batches through the quorum
// machinery, and converts node overload (ErrOverloaded) into
// backpressure:
//
//	ap, _ := s.Appender(ctx, dla.AppendOptions{})
//	ack, _ := ap.Append(ctx, map[dla.Attr]dla.Value{"id": dla.String("U1")})
//	g, _ := ack.GLSN() // resolves once the record is stored everywhere
//	_ = ap.Close(ctx)  // drains: every ack resolves before Close returns
//
// Everything underneath stays in internal/ packages; the type aliases
// below re-export the vocabulary types so callers never import them.
package dla

import (
	"context"
	"errors"
	"fmt"

	"confaudit/internal/audit"
	"confaudit/internal/cluster"
	"confaudit/internal/core"
	"confaudit/internal/crypto/blind"
	"confaudit/internal/integrity"
	"confaudit/internal/logmodel"
	"confaudit/internal/resilience"
	"confaudit/internal/ticket"
	"confaudit/internal/transport"
)

// Vocabulary types re-exported from the internal packages. Aliases keep
// the internal packages out of caller import paths while preserving
// type identity with the rest of the module.
type (
	// Attr names a log-record attribute.
	Attr = logmodel.Attr
	// Value is a typed attribute value; build with String, Int, Float.
	Value = logmodel.Value
	// GLSN is a global log sequence number.
	GLSN = logmodel.GLSN
	// Record is a reassembled log record.
	Record = logmodel.Record
	// Partition assigns schema attributes to DLA nodes.
	Partition = logmodel.Partition
	// AggKind selects an aggregate function for Session.Aggregate.
	AggKind = audit.AggKind
	// ResultCert certifies a query result; check with VerifyResult.
	ResultCert = audit.ResultCert
	// TransactionReport is the outcome of Session.CheckTransaction.
	TransactionReport = audit.TransactionReport
	// IntegrityReport is the outcome of Cluster.CheckIntegrity.
	IntegrityReport = integrity.Report
	// HealthConfig tunes the client-side failure detector.
	HealthConfig = resilience.DetectorConfig
	// HealthView is a point-in-time snapshot of peer health.
	HealthView = resilience.HealthView
	// Op is a ticket capability.
	Op = ticket.Op
	// PublicKey verifies node signatures on certified results.
	PublicKey = blind.PublicKey
	// Appender is the streaming write path; open one with
	// Session.Appender.
	Appender = cluster.Appender
	// AppendOptions tune an Appender (batch bounds, linger, inflight
	// window, overload policy).
	AppendOptions = cluster.AppendOptions
	// Ack is the per-record future an Appender.Append returns.
	Ack = cluster.Ack
	// OverloadPolicy selects block-or-drop behavior under ErrOverloaded.
	OverloadPolicy = cluster.OverloadPolicy
	// AdmissionConfig bounds a node's ingest admission; set on
	// ClusterOptions.Admission.
	AdmissionConfig = cluster.AdmissionConfig
	// AdmissionStatus snapshots a node's admission state (token fill,
	// inflight bytes, rejection counts).
	AdmissionStatus = cluster.AdmissionStatus
)

// Backpressure policies for AppendOptions.OnOverload.
const (
	OverloadBlock = cluster.OverloadBlock
	OverloadDrop  = cluster.OverloadDrop
)

// ErrOverloaded is a node's typed ingest-admission refusal; the
// Appender converts it into backpressure per AppendOptions.OnOverload.
// Wrap-checked with errors.Is.
var ErrOverloaded = cluster.ErrOverloaded

// ErrAppenderClosed is returned by Appender.Append after Close began.
var ErrAppenderClosed = cluster.ErrAppenderClosed

// Aggregate kinds for Session.Aggregate.
const (
	AggCount = audit.AggCount
	AggSum   = audit.AggSum
	AggMax   = audit.AggMax
	AggMin   = audit.AggMin
	AggAvg   = audit.AggAvg
)

// Ticket capabilities for SessionConfig.Ops.
const (
	OpRead  = ticket.OpRead
	OpWrite = ticket.OpWrite
)

// String builds a string attribute value.
func String(s string) Value { return logmodel.String(s) }

// Int builds an integer attribute value.
func Int(i int64) Value { return logmodel.Int(i) }

// Float builds a floating-point attribute value.
func Float(f float64) Value { return logmodel.Float(f) }

// VerifyResult checks a certified query result against the cluster's
// node verification keys (Cluster.PeerKeys). A single compromised
// responder cannot forge a certificate that verifies.
func VerifyResult(keys map[string]PublicKey, session string, glsns []GLSN, cert *ResultCert) error {
	return audit.VerifyResult(keys, session, glsns, cert)
}

// ClusterOptions configure Deploy.
type ClusterOptions struct {
	// Partition is the attribute partition over the DLA nodes; required.
	Partition *Partition
	// DataDir, when set, journals node state for durable redeploys.
	DataDir string
	// Admission bounds every node's ingest admission (token-bucket
	// records/sec + inflight payload bytes). The zero value admits
	// everything; with bounds set, overloaded nodes refuse stores with
	// ErrOverloaded instead of queueing unboundedly.
	Admission AdmissionConfig
}

// Cluster is a running DLA deployment.
type Cluster struct {
	d *core.Deployment
}

// Deploy provisions keys, starts every DLA node in-process, and
// launches the audit and integrity services.
func Deploy(opts ClusterOptions) (*Cluster, error) {
	d, err := core.Deploy(core.Options{Partition: opts.Partition, DataDir: opts.DataDir, Admission: opts.Admission})
	if err != nil {
		return nil, err
	}
	return &Cluster{d: d}, nil
}

// Close stops every node and releases the cluster's resources.
func (c *Cluster) Close() error { return c.d.Close() }

// Roster returns the DLA node IDs in order.
func (c *Cluster) Roster() []string { return c.d.Roster() }

// PeerKeys returns each node's public verification key, for checking
// certified query results with VerifyResult.
func (c *Cluster) PeerKeys() map[string]PublicKey { return c.d.Bootstrap().PeerKeys }

// CheckIntegrity runs the accumulator circulation sweep from the given
// node over the listed glsns (all stored glsns when none are given).
func (c *Cluster) CheckIntegrity(ctx context.Context, nodeID string, glsns ...GLSN) (*IntegrityReport, error) {
	return c.d.CheckIntegrity(ctx, nodeID, glsns...)
}

// Deployment exposes the underlying deployment for tooling and tests
// that need node-level access (e.g. fault injection). Application code
// should not need it.
func (c *Cluster) Deployment() *core.Deployment { return c.d }

// SessionConfig configures Connect.
type SessionConfig struct {
	// ID is the session's network identity; required.
	ID string
	// TicketID names the capability ticket issued for this session;
	// required.
	TicketID string
	// Ops are the ticket capabilities (default: read + write).
	Ops []Op
	// OutboxPath, when set, spools writes to dead nodes on disk and
	// replays them when the peer recovers. Requires Health.
	OutboxPath string
	// Health, when set, starts the client-side failure detector as part
	// of Connect — before any traffic, satisfying the ordering contract
	// of cluster.ClientConfig.
	Health *HealthConfig
}

// Session is a connected client: it logs records under its ticket and
// runs confidential auditing queries against the cluster.
type Session struct {
	mb      *transport.Mailbox
	client  *cluster.Client
	auditor *audit.Auditor
	cancel  context.CancelFunc
}

// Connect attaches a session to the cluster: it opens an endpoint,
// issues and registers the ticket, and — when configured — starts the
// health detector and outbox before any traffic flows.
func Connect(ctx context.Context, cl *Cluster, cfg SessionConfig) (*Session, error) {
	if cl == nil {
		return nil, errors.New("dla: nil cluster")
	}
	if cfg.ID == "" || cfg.TicketID == "" {
		return nil, errors.New("dla: SessionConfig.ID and TicketID are required")
	}
	ops := cfg.Ops
	if len(ops) == 0 {
		ops = []Op{OpRead, OpWrite}
	}
	boot := cl.d.Bootstrap()
	ep, err := cl.d.Network().Endpoint(cfg.ID)
	if err != nil {
		return nil, fmt.Errorf("dla: attaching %s: %w", cfg.ID, err)
	}
	mb := transport.NewMailbox(ep)
	tk, err := boot.Issuer.Issue(cfg.TicketID, cfg.ID, ops...)
	if err != nil {
		mb.Close() //nolint:errcheck
		return nil, err
	}
	c, err := cluster.OpenClient(mb, cluster.ClientConfig{
		Roster:      boot.Roster,
		Partition:   boot.Partition,
		Accumulator: boot.AccParams,
		Ticket:      tk,
		OutboxPath:  cfg.OutboxPath,
		Health:      cfg.Health,
	})
	if err != nil {
		mb.Close() //nolint:errcheck
		return nil, err
	}
	s := &Session{mb: mb, client: c, auditor: audit.NewAuditor(mb, boot.Roster[0], tk.ID)}
	hctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	if err := c.StartHealthIfConfigured(hctx); err != nil {
		s.Close() //nolint:errcheck
		return nil, err
	}
	if err := c.RegisterTicket(ctx); err != nil {
		s.Close() //nolint:errcheck
		return nil, err
	}
	return s, nil
}

// Log writes one record; the record is fragmented across the cluster
// so no single DLA node sees it whole.
func (s *Session) Log(ctx context.Context, values map[Attr]Value) (GLSN, error) {
	return s.client.Log(ctx, values)
}

// LogBatch writes records under one glsn reservation and one store
// round per node — the right call when a slice of records is already in
// hand. For continuous streams, use Appender.
func (s *Session) LogBatch(ctx context.Context, records []map[Attr]Value) ([]GLSN, error) {
	return s.client.LogBatch(ctx, records)
}

// Appender opens the streaming write path: concurrent Appends batch
// client-side (sealed by count, bytes, or linger time), batches
// pipeline through the quorum machinery up to AppendOptions.MaxInflight
// deep, and each record's Ack future resolves with its glsn. Node
// overload becomes backpressure per AppendOptions.OnOverload. The
// context bounds the appender's lifetime; Close drains it.
func (s *Session) Appender(ctx context.Context, opts AppendOptions) (*Appender, error) {
	return s.client.NewAppender(ctx, opts)
}

// Read reassembles a record this session's ticket grants access to.
func (s *Session) Read(ctx context.Context, g GLSN) (Record, error) {
	return s.client.Read(ctx, g)
}

// Query runs a confidential auditing criterion and returns the
// matching glsns; the session never sees non-matching fragments.
func (s *Session) Query(ctx context.Context, criteria string) ([]GLSN, error) {
	return s.auditor.Query(ctx, criteria)
}

// QueryCertified runs a criterion and additionally returns the result
// certificate and the session it binds; check with VerifyResult.
func (s *Session) QueryCertified(ctx context.Context, criteria string) ([]GLSN, string, *ResultCert, error) {
	return s.auditor.QueryCertified(ctx, criteria)
}

// Aggregate computes an aggregate over the records matching the
// criterion without revealing the matching records themselves.
func (s *Session) Aggregate(ctx context.Context, criteria string, kind AggKind, attr Attr) (float64, error) {
	return s.auditor.Aggregate(ctx, criteria, kind, attr)
}

// CheckTransaction audits a transaction's events against its
// specification rule set R_T (paper eq. 2).
func (s *Session) CheckTransaction(ctx context.Context, tidAttr Attr, tidValue string, rules []string) (*TransactionReport, error) {
	return s.auditor.CheckTransaction(ctx, tidAttr, tidValue, rules)
}

// Health reports the failure detector's view of the cluster, or nil
// when the session was connected without a HealthConfig.
func (s *Session) Health() HealthView { return s.client.HealthView() }

// Client exposes the underlying cluster client for advanced use
// (outbox inspection, deletes). Application code should not need it.
func (s *Session) Client() *cluster.Client { return s.client }

// Close stops the health detector, flushes the outbox, and releases
// the session's endpoint.
func (s *Session) Close() error {
	s.cancel()
	s.client.HealthWait()
	err := s.client.CloseOutbox()
	if cerr := s.mb.Close(); err == nil {
		err = cerr
	}
	return err
}
