package dla

import (
	"context"
	"io"
	"math/big"

	"confaudit/internal/crypto/blind"
	"confaudit/internal/evidence"
)

// Membership vocabulary (paper §4.2) re-exported: anonymous blind
// credentials plus the PP/SC/RE join handshake and its evidence chain.
type (
	// CredentialAuthority issues blind membership credentials; it meters
	// admission without learning who joins.
	CredentialAuthority = blind.Authority
	// Member is a prospective or admitted cluster member holding an
	// anonymous credential.
	Member = evidence.Member
	// EvidenceChain is the countersigned join history of a cluster.
	EvidenceChain = evidence.Chain
	// EvidencePiece is one countersigned invite in the chain.
	EvidencePiece = evidence.Piece
	// Misconduct names a member caught violating the join protocol.
	Misconduct = evidence.Misconduct
)

// NewCredentialAuthority creates a credential authority with bits-sized
// keys.
func NewCredentialAuthority(rng io.Reader, bits int) (*CredentialAuthority, error) {
	return blind.NewAuthority(rng, bits)
}

// NewMember obtains an anonymous credential from the authority's issue
// function (typically (*CredentialAuthority).SignBlinded).
func NewMember(rng io.Reader, bits int, ca PublicKey, issue func(*big.Int) (*big.Int, error)) (*Member, error) {
	return evidence.NewMember(rng, bits, ca, issue)
}

// Invite runs the inviter's side of the PP/SC/RE handshake, returning
// the countersigned evidence piece to append to the chain.
func Invite(ctx context.Context, mb *Mailbox, session string, m *Member, chain *EvidenceChain, candidate, proposal string) (*EvidencePiece, error) {
	return evidence.Invite(ctx, mb, session, m, chain, candidate, proposal)
}

// Join runs the joiner's side of the PP/SC/RE handshake.
func Join(ctx context.Context, mb *Mailbox, session string, m *Member, inviter string, services []string) (*EvidencePiece, error) {
	return evidence.Join(ctx, mb, session, m, inviter, services)
}

// DetectDoubleInvite scans countersigned pieces for one inviter signing
// two invites — self-incriminating misconduct (nil when clean).
func DetectDoubleInvite(pieces []EvidencePiece) *Misconduct {
	return evidence.DetectDoubleInvite(pieces)
}
