package dla

import (
	"context"
	"math/big"

	"confaudit/internal/smc/compare"
	"confaudit/internal/smc/sum"
)

// Secure-multiparty vocabulary (paper §3.3 and §3.5) re-exported so
// cross-organization computations run through pkg/dla alone.
type (
	// SumConfig configures a (k,n) secret-sharing secure sum.
	SumConfig = sum.Config
	// RankConfig configures the blind-TTP comparison protocol.
	RankConfig = compare.RankConfig
	// RankResult is a participant's view of the ranking outcome.
	RankResult = compare.RankResult
)

// SecureSum runs one party's side of the §3.5 secure sum: the parties
// jointly compute the total of their private addends; only the
// configured receivers learn it (others get nil).
func SecureSum(ctx context.Context, mb *Mailbox, cfg SumConfig, value *big.Int) (*big.Int, error) {
	return sum.Run(ctx, mb, cfg, value)
}

// Rank runs one value-holder's side of the §3.3 blind-TTP ranking; the
// TTP sees only monotone-transformed values.
func Rank(ctx context.Context, mb *Mailbox, cfg RankConfig, value *big.Int) (*RankResult, error) {
	return compare.Rank(ctx, mb, cfg, value)
}

// ServeRank runs the blind TTP's side of the §3.3 ranking.
func ServeRank(ctx context.Context, mb *Mailbox, cfg RankConfig) error {
	return compare.ServeRank(ctx, mb, cfg)
}
