// Command dlaload is the workload simulator: it deploys an in-process
// DLA cluster, drives one of the built-in scenarios (burst, mixed,
// hotkey, slownode) through the streaming Appender path at a sweep of
// offered loads, and prints the throughput/latency knee of curve next
// to the synchronous LogBatch baseline measured in the same run.
//
//	dlaload -scenario burst -records 5000 -rates 1000,4000,0
//	dlaload -scenario burst -crash P1 -dataroot /tmp/dlaload
//	dlaload -list
//	dlaload -json -out ingest.json
//
// A rate of 0 means unpaced: append as fast as backpressure admits —
// the right-hand end of the knee. With -crash the named node is killed
// and restarted mid-run; the report's lost_acks row audits every acked
// glsn against the recovered cluster and must be zero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"confaudit/internal/cluster"
	"confaudit/internal/loadgen"
	"confaudit/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlaload: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dlaload", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list scenarios and exit")
		scenario  = fs.String("scenario", "burst", "scenario name (see -list)")
		nodes     = fs.Int("nodes", 4, "cluster size")
		producers = fs.Int("producers", 4, "concurrent appender sessions")
		records   = fs.Int("records", 2000, "records per offered-load point")
		rates     = fs.String("rates", "1000,4000,0", "offered loads in records/sec (0 = unpaced)")
		seed      = fs.Uint64("seed", 42, "workload seed")
		batch     = fs.Int("batch", 128, "appender max batch records")
		inflight  = fs.Int("inflight", 4, "appender max inflight batches")
		linger    = fs.Duration("linger", 2*time.Millisecond, "appender linger")
		baseBatch = fs.Int("baseline-batch", 1, "records per synchronous LogBatch in the baseline run")
		admitRPS  = fs.Float64("admit-rps", 0, "per-node admission records/sec (0 = unbounded)")
		admitMB   = fs.Int64("admit-inflight-bytes", 0, "per-node admission inflight-bytes cap (0 = unbounded)")
		crash     = fs.String("crash", "", "crash+restart this node mid-run (needs -dataroot)")
		dataroot  = fs.String("dataroot", "", "per-node WAL root (enables durability)")
		timeout   = fs.Duration("timeout", 5*time.Minute, "whole-run timeout")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON")
		out       = fs.String("out", "", "also write the JSON report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sc := range workload.Scenarios() {
			fmt.Printf("%-10s %s\n", sc.Name, sc.Description)
		}
		return nil
	}
	sc, err := workload.ScenarioByName(*scenario)
	if err != nil {
		return err
	}
	var rateList []float64
	for _, f := range strings.Split(*rates, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		r, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("bad -rates entry %q: %w", f, err)
		}
		rateList = append(rateList, r)
	}
	if *crash != "" && *dataroot == "" {
		return fmt.Errorf("-crash needs -dataroot so the node can recover its WAL")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cfg := loadgen.Config{
		Scenario:  sc,
		Nodes:     *nodes,
		Producers: *producers,
		Records:   *records,
		Rates:     rateList,
		Seed:      *seed,
		Admission: cluster.AdmissionConfig{RecordsPerSec: *admitRPS, MaxInflightBytes: *admitMB},
		Append: cluster.AppendOptions{
			MaxBatchRecords: *batch,
			MaxInflight:     *inflight,
			Linger:          *linger,
		},
		BaselineBatch: *baseBatch,
		DataRoot:      *dataroot,
		CrashNode:     *crash,
	}
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	printReport(rep)
	return nil
}

func printReport(rep *loadgen.Report) {
	fmt.Printf("scenario %s: %d nodes, %d producers, %d records/point\n",
		rep.Scenario, rep.Nodes, rep.Producers, rep.Records)
	fmt.Printf("%-12s %-12s %-8s %-8s %8s %8s %8s %8s\n",
		"offered", "achieved", "acked", "failed", "p50ms", "p95ms", "p99ms", "maxms")
	for _, p := range rep.Points {
		offered := "unpaced"
		if p.OfferedRPS > 0 {
			offered = fmt.Sprintf("%.0f/s", p.OfferedRPS)
		}
		fmt.Printf("%-12s %-12s %-8d %-8d %8.2f %8.2f %8.2f %8.2f\n",
			offered, fmt.Sprintf("%.0f/s", p.AchievedRPS), p.Acked, p.Failed,
			p.P50Ms, p.P95Ms, p.P99Ms, p.MaxMs)
	}
	if rep.Baseline != nil {
		b := rep.Baseline
		fmt.Printf("%-12s %-12s %-8d %-8d %8.2f %8.2f %8.2f %8.2f\n",
			"sync-base", fmt.Sprintf("%.0f/s", b.AchievedRPS), b.Acked, b.Failed,
			b.P50Ms, b.P95Ms, b.P99Ms, b.MaxMs)
		fmt.Printf("appender speedup over sync LogBatch: %.1fx\n", rep.Speedup)
	}
	if rep.Crashed != "" {
		fmt.Printf("crash/restart cycle on %s survived\n", rep.Crashed)
	}
	if rep.Queries > 0 {
		fmt.Printf("queries: %d, p95 %.2fms\n", rep.Queries, rep.QueryP95Ms)
	}
	fmt.Printf("lost acks: %d\n", rep.LostAcks)
}
