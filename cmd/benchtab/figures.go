package main

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
	"sync"
	"time"

	"confaudit/internal/audit"
	"confaudit/internal/core"
	"confaudit/internal/crypto/blind"
	"confaudit/internal/crypto/commutative"
	"confaudit/internal/evidence"
	"confaudit/internal/logmodel"
	"confaudit/internal/mathx"
	"confaudit/internal/query"
	"confaudit/internal/smc/compare"
	"confaudit/internal/smc/intersect"
	"confaudit/internal/transport"
)

func runFigures(which string) error {
	want := func(n string) bool { return which == "all" || which == n }
	type fig struct {
		n  string
		fn func() error
	}
	for _, f := range []fig{
		{"1", figure1}, {"2", figure2}, {"3", figure3}, {"4", figure4},
		{"5", figure5}, {"6", figure6}, {"7", figure7},
	} {
		if want(f.n) {
			if err := f.fn(); err != nil {
				return fmt.Errorf("figure %s: %w", f.n, err)
			}
		}
	}
	return nil
}

// figure1 demonstrates the centralized auditing model baseline.
func figure1() error {
	section("FIGURE 1 — CENTRALIZED AUDITING MODEL (baseline)")
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		return err
	}
	c := audit.NewCentralized()
	for _, rec := range ex.Records {
		c.Store(rec)
	}
	fmt.Printf("single auditor holds ALL %d complete records (absolute trust required)\n", c.Len())
	got, err := c.Query(`protocl = "UDP" AND id = "U1"`)
	if err != nil {
		return err
	}
	fmt.Printf("query protocl=UDP AND id=U1 -> %v\n", got)
	total, err := c.Aggregate("*", audit.AggSum, "C1")
	if err != nil {
		return err
	}
	fmt.Printf("sum(C1) over all records -> %.0f\n", total)
	fmt.Println("weakness: the auditor sees every raw attribute of every record.")
	return nil
}

// figure2 runs the full DLA architecture end to end.
func figure2() error {
	section("FIGURE 2 — DISTRIBUTED ONLINE CONFIDENTIAL AUDITING (DLA)")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		return err
	}
	dla, err := core.Deploy(core.Options{Partition: ex.Partition})
	if err != nil {
		return err
	}
	defer dla.Close() //nolint:errcheck
	fmt.Printf("DLA subsystem: %v (leader/sequencer: %s)\n", dla.Roster(), dla.Roster()[0])
	user, err := dla.NewUser(ctx, "u_j", "T1")
	if err != nil {
		return err
	}
	for _, rec := range ex.Records {
		if _, err := user.Log(ctx, rec.Values); err != nil {
			return err
		}
	}
	fmt.Println("application subsystem logged 5 records; fragments spread over P0..P3")
	for _, node := range dla.Roster() {
		n, _ := dla.Node(node)
		frag, _ := n.Fragment(0x139aef78)
		fmt.Printf("  %s stores %d attribute(s) of glsn 139aef78\n", node, len(frag.Values))
	}
	auditor, err := dla.NewAuditor(ctx, "auditor", "TA")
	if err != nil {
		return err
	}
	got, err := auditor.Query(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		return err
	}
	fmt.Printf("confidential audit of T: matching glsns %v (no raw data moved)\n", got)
	return nil
}

// figure3 shows the query decomposition of Figure 3.
func figure3() error {
	section("FIGURE 3 — DISTRIBUTED CONFIDENTIAL AUDITING QUERY PROCESSING")
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		return err
	}
	criteria := `C1 > 30 AND Tid = "T1100265" AND (time = "20:18:35/05/12/2002" OR id = "U1") AND C2 < C1`
	fmt.Printf("auditing criteria Q from u_j:\n  %s\n", criteria)
	expr, err := query.Parse(criteria)
	if err != nil {
		return err
	}
	norm, err := query.Normalize(expr)
	if err != nil {
		return err
	}
	fmt.Printf("normalized conjunctive form Q_N with %d subqueries:\n", len(norm.Clauses))
	plans, err := query.Classify(norm, ex.Partition)
	if err != nil {
		return err
	}
	for i, p := range plans {
		role := "local (single DLA node)"
		if p.Cross {
			role = "cross (relaxed secure distributed computation)"
		}
		fmt.Printf("  SQ%d: %-58s -> %v  [%s]\n", i, p.Clause.String(), p.Nodes, role)
	}
	fmt.Println("conjunction of SQ_i processed by secure set intersection keyed by glsn")
	return nil
}

// figure4 reproduces the three-node secure set intersection trace.
func figure4() error {
	section("FIGURE 4 — SECURE SET INTERSECTION (exact paper example)")
	g := mathx.Oakley768
	k1, err := commutative.NewPHKey(rand.Reader, g)
	if err != nil {
		return err
	}
	k2, err := commutative.NewPHKey(rand.Reader, g)
	if err != nil {
		return err
	}
	k3, err := commutative.NewPHKey(rand.Reader, g)
	if err != nil {
		return err
	}
	sets := map[string][]string{
		"P1": {"c", "d", "e"},
		"P2": {"d", "e", "f"},
		"P3": {"e", "f", "g"},
	}
	fmt.Printf("S1=%v  S2=%v  S3=%v\n", sets["P1"], sets["P2"], sets["P3"])

	enc := func(keys []*commutative.PHKey, el string) *big.Int {
		v := g.HashToQR([]byte(el))
		for _, k := range keys {
			v, _ = k.EncryptInt(v) //nolint:errcheck // inputs are valid group elements
		}
		return v
	}
	short := func(v *big.Int) string {
		s := fmt.Sprintf("%x", v)
		if len(s) > 12 {
			return s[:12] + "..."
		}
		return s
	}
	fmt.Println("\nhop-by-hop encryption of the common element e:")
	fmt.Printf("  E1(e)    = %s\n", short(enc([]*commutative.PHKey{k1}, "e")))
	fmt.Printf("  E21(e)   = %s\n", short(enc([]*commutative.PHKey{k1, k2}, "e")))
	fmt.Printf("  E321(e)  = %s\n", short(enc([]*commutative.PHKey{k1, k2, k3}, "e")))
	fmt.Printf("  E132(e)  = %s\n", short(enc([]*commutative.PHKey{k2, k3, k1}, "e")))
	fmt.Printf("  E213(e)  = %s\n", short(enc([]*commutative.PHKey{k3, k1, k2}, "e")))
	e321 := enc([]*commutative.PHKey{k1, k2, k3}, "e")
	e132 := enc([]*commutative.PHKey{k2, k3, k1}, "e")
	e213 := enc([]*commutative.PHKey{k3, k1, k2}, "e")
	fmt.Printf("E132(e) = E321(e) = E213(e): %v (eq. 6 order independence)\n",
		e321.Cmp(e132) == 0 && e132.Cmp(e213) == 0)

	// And the full three-party protocol over the simulated network.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	cfg := intersect.Config{
		Group:     g,
		Ring:      []string{"P1", "P2", "P3"},
		Receivers: []string{"P1", "P2", "P3"},
		Session:   "fig4",
	}
	var wg sync.WaitGroup
	results := make(map[string][]string)
	var mu sync.Mutex
	for node, els := range sets {
		ep, err := net.Endpoint(node)
		if err != nil {
			return err
		}
		mb := transport.NewMailbox(ep)
		defer mb.Close() //nolint:errcheck
		local := make([][]byte, len(els))
		for i, e := range els {
			local[i] = []byte(e)
		}
		wg.Add(1)
		go func(node string, mb *transport.Mailbox, local [][]byte) {
			defer wg.Done()
			res, err := intersect.Run(ctx, mb, cfg, local)
			if err != nil {
				return
			}
			var plain []string
			for _, p := range res.Plaintext {
				plain = append(plain, string(p))
			}
			mu.Lock()
			results[node] = plain
			mu.Unlock()
		}(node, mb, local)
	}
	wg.Wait()
	fmt.Printf("protocol run over the network: every receiver computed S1∩S2∩S3 = %v\n", results["P1"])
	return nil
}

// figure5 demonstrates secure equality checking (§3.2): both the
// |S|=1 intersection route and the randomized-mapping TTP route.
func figure5() error {
	section("§3.2 SECURE EQUALITY CHECKING (the text's 'Figure 5' reference)")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := make(map[string]*transport.Mailbox, 3)
	for _, id := range []string{"R", "M", "TTP"} {
		ep, err := net.Endpoint(id)
		if err != nil {
			return err
		}
		mbs[id] = transport.NewMailbox(ep)
		defer mbs[id].Close() //nolint:errcheck
	}
	cfg := compare.EqualityConfig{
		P:       big.NewInt(2305843009213693951),
		Holders: [2]string{"R", "M"},
		TTP:     "TTP",
		Session: "fig5",
	}
	xR, xM := big.NewInt(45002), big.NewInt(45002)
	var wg sync.WaitGroup
	var eq bool
	wg.Add(3)
	go func() { defer wg.Done(); compare.ServeEqual(ctx, mbs["TTP"], cfg) }() //nolint:errcheck
	go func() { defer wg.Done(); eq, _ = compare.Equal(ctx, mbs["R"], cfg, xR) }()
	go func() { defer wg.Done(); compare.Equal(ctx, mbs["M"], cfg, xM) }() //nolint:errcheck
	wg.Wait()
	fmt.Printf("X_R = X_M = 45002 held privately; TTP compared W=(aY+b) mod p\n")
	fmt.Printf("TTP verdict (without learning X): equal = %v\n", eq)
	return nil
}

// figure6 rebuilds the evidence chain of Figure 6.
func figure6() error {
	section("FIGURE 6 — UNDENIABLE EVIDENCE CHAIN FOR DLA MEMBERSHIP")
	chain, _, err := buildChain(4)
	if err != nil {
		return err
	}
	if err := chain.Verify(); err != nil {
		return err
	}
	fmt.Printf("chain verified: %d members joined through %d evidence pieces\n",
		len(chain.Members()), len(chain.Pieces))
	for i := range chain.Pieces {
		p := &chain.Pieces[i]
		fmt.Printf("  e%d: inviter=%s joiner=%s terms=%q\n",
			i+1, shortPseudonym(p.Inviter), shortPseudonym(p.Joiner), p.Terms.Proposal)
	}
	tail, err := chain.Tail()
	if err != nil {
		return err
	}
	fmt.Printf("invite authority now at chain tail %s\n", shortPseudonym(tail))
	return nil
}

// shortPseudonym renders a stable 12-hex-digit handle for a pseudonym.
func shortPseudonym(p evidence.Pseudonym) string {
	sum := sha256.Sum256(p.Bytes())
	return fmt.Sprintf("%x", sum[:6])
}

// figure7 narrates the three-way PP/SC/RE handshake.
func figure7() error {
	section("FIGURE 7 — r-BINDING OF MEMBERSHIP (PP / SC / RE handshake)")
	chain, members, err := buildChain(2)
	if err != nil {
		return err
	}
	p := &chain.Pieces[0]
	fmt.Println("phase 1  PP: P_y -> P_x  policy proposal + inviter credential")
	fmt.Println("phase 2  SC: P_x -> P_y  service commitment + joiner credential + signature")
	fmt.Println("phase 3  RE: P_y -> P_x  countersigned evidence; invite authority passes to P_x")
	fmt.Printf("evidence piece verifies (f(e) =? 1): %v\n", p.Verify(chain.CA) == nil)
	fmt.Printf("tokens anonymous toward CA yet verifiable (g(t) =? 1): %v\n",
		blind.Verify(chain.CA, members[0].Pseudonym().Bytes(), members[0].Token()) == nil)
	return nil
}

// buildChain constructs an n-member evidence chain over a fresh network.
func buildChain(n int) (*evidence.Chain, []*evidence.Member, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	ca, err := blind.NewAuthority(rand.Reader, 1024)
	if err != nil {
		return nil, nil, err
	}
	members := make([]*evidence.Member, n)
	for i := range members {
		if members[i], err = evidence.NewMember(rand.Reader, 1024, ca.Public(), ca.SignBlinded); err != nil {
			return nil, nil, err
		}
	}
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs := make([]*transport.Mailbox, n)
	for i := range mbs {
		ep, err := net.Endpoint(fmt.Sprintf("N%d", i))
		if err != nil {
			return nil, nil, err
		}
		mbs[i] = transport.NewMailbox(ep)
		defer mbs[i].Close() //nolint:errcheck
	}
	chain := &evidence.Chain{CA: ca.Public()}
	for i := 1; i < n; i++ {
		session := fmt.Sprintf("join-%d", i)
		var (
			wg      sync.WaitGroup
			piece   *evidence.Piece
			invErr  error
			joinErr error
		)
		wg.Add(2)
		go func(inv int) {
			defer wg.Done()
			piece, invErr = evidence.Invite(ctx, mbs[inv], session, members[inv], chain,
				fmt.Sprintf("N%d", inv+1), "serve logging and auditing")
		}(i - 1)
		go func(join int) {
			defer wg.Done()
			_, joinErr = evidence.Join(ctx, mbs[join], session, members[join],
				fmt.Sprintf("N%d", join-1), []string{"logging", "auditing"})
		}(i)
		wg.Wait()
		if invErr != nil {
			return nil, nil, invErr
		}
		if joinErr != nil {
			return nil, nil, joinErr
		}
		chain.Pieces = append(chain.Pieces, *piece)
	}
	return chain, members, nil
}
