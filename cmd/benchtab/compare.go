package main

import (
	"context"
	"fmt"
	"math/big"
	"sync"
	"time"

	"confaudit/internal/mathx"
	"confaudit/internal/smc/circuit"
	"confaudit/internal/smc/compare"
	"confaudit/internal/smc/garbled"
	"confaudit/internal/smc/intersect"
	"confaudit/internal/smc/sum"
	"confaudit/internal/transport"
)

// runCompare measures the paper's central quantitative claims:
//
//	C1: classical zero-disclosure SMC (Yao garbled circuits over OT) is
//	    orders of magnitude more expensive than the relaxed primitives;
//	C2: blind-TTP coordination makes equality/comparison cheap;
//	C3: the secret-sharing secure sum scales mildly with party count.
func runCompare() error {
	section("CLAIM C1/C2 — RELAXED (blind-TTP) vs CLASSICAL (garbled circuit) SECURE EQUALITY")
	relaxed, err := timeRelaxedEquality(64)
	if err != nil {
		return err
	}
	classical, err := timeGarbledEquality(8)
	if err != nil {
		return err
	}
	fmt.Printf("%-44s %14s\n", "protocol", "per equality")
	fmt.Printf("%-44s %14s\n", "relaxed =s (randomized mapping + blind TTP)", relaxed)
	fmt.Printf("%-44s %14s\n", "classical (32-bit garbled circuit + OT)", classical)
	fmt.Printf("cost ratio classical/relaxed: %.0fx\n", float64(classical)/float64(relaxed))

	section("CLAIM C1 — SECURE SET INTERSECTION COST vs SET SIZE (3 nodes, 768-bit group)")
	fmt.Printf("%-10s %14s %16s\n", "set size", "total time", "per element")
	for _, size := range []int{4, 16, 64} {
		d, err := timeIntersect(3, size)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %14s %16s\n", size, d, d/time.Duration(size))
	}

	section("CLAIM C3 — SECURE SUM COST vs PARTY COUNT (k = majority)")
	fmt.Printf("%-10s %14s\n", "parties", "total time")
	for _, n := range []int{3, 5, 9} {
		d, err := timeSecureSum(n)
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %14s\n", n, d)
	}
	fmt.Println("\n(see `go test -bench=. ./...` and bench_output.txt for the full suite)")
	return nil
}

func mailboxSet(net *transport.MemNetwork, ids ...string) (map[string]*transport.Mailbox, func(), error) {
	mbs := make(map[string]*transport.Mailbox, len(ids))
	for _, id := range ids {
		ep, err := net.Endpoint(id)
		if err != nil {
			return nil, nil, err
		}
		mbs[id] = transport.NewMailbox(ep)
	}
	cleanup := func() {
		for _, mb := range mbs {
			mb.Close() //nolint:errcheck
		}
	}
	return mbs, cleanup, nil
}

func timeRelaxedEquality(iters int) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs, cleanup, err := mailboxSet(net, "A", "B", "T")
	if err != nil {
		return 0, err
	}
	defer cleanup()
	va, vb := big.NewInt(123456), big.NewInt(123456)
	start := time.Now()
	for i := 0; i < iters; i++ {
		cfg := compare.EqualityConfig{
			P:       big.NewInt(2305843009213693951),
			Holders: [2]string{"A", "B"},
			TTP:     "T",
			Session: fmt.Sprintf("eq-%d", i),
		}
		var wg sync.WaitGroup
		wg.Add(3)
		var errA, errB, errT error
		go func() { defer wg.Done(); errT = compare.ServeEqual(ctx, mbs["T"], cfg) }()
		go func() { defer wg.Done(); _, errA = compare.Equal(ctx, mbs["A"], cfg, va) }()
		go func() { defer wg.Done(); _, errB = compare.Equal(ctx, mbs["B"], cfg, vb) }()
		wg.Wait()
		for _, err := range []error{errA, errB, errT} {
			if err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

func timeGarbledEquality(iters int) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	mbs, cleanup, err := mailboxSet(net, "G", "E")
	if err != nil {
		return 0, err
	}
	defer cleanup()
	c := circuit.Equality(32)
	x := circuit.Uint64ToBits(123456, 32)
	y := circuit.Uint64ToBits(123456, 32)
	start := time.Now()
	for i := 0; i < iters; i++ {
		cfg := garbled.Config{
			Group:     mathx.Oakley768,
			Garbler:   "G",
			Evaluator: "E",
			Session:   fmt.Sprintf("gc-%d", i),
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var errG, errE error
		go func() { defer wg.Done(); _, errG = garbled.Garble(ctx, mbs["G"], cfg, c, x) }()
		go func() { defer wg.Done(); _, errE = garbled.Evaluate(ctx, mbs["E"], cfg, c, y) }()
		wg.Wait()
		if errG != nil {
			return 0, errG
		}
		if errE != nil {
			return 0, errE
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

func timeIntersect(parties, setSize int) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ring := make([]string, parties)
	for i := range ring {
		ring[i] = fmt.Sprintf("P%d", i)
	}
	mbs, cleanup, err := mailboxSet(net, ring...)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	sets := make(map[string][][]byte, parties)
	for _, node := range ring {
		s := make([][]byte, setSize)
		for j := range s {
			s[j] = []byte(fmt.Sprintf("element-%05d", j))
		}
		sets[node] = s
	}
	start := time.Now()
	cfg := intersect.Config{
		Group:     mathx.Oakley768,
		Ring:      ring,
		Receivers: []string{ring[0]},
		Session:   "bench",
	}
	var wg sync.WaitGroup
	errs := make([]error, parties)
	for i, node := range ring {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			_, errs[i] = intersect.Run(ctx, mbs[node], cfg, sets[node])
		}(i, node)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func timeSecureSum(parties int) (time.Duration, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	net := transport.NewMemNetwork()
	defer net.Close() //nolint:errcheck
	ids := make([]string, parties)
	for i := range ids {
		ids[i] = fmt.Sprintf("P%d", i)
	}
	mbs, cleanup, err := mailboxSet(net, ids...)
	if err != nil {
		return 0, err
	}
	defer cleanup()
	cfg := sum.Config{
		P:         big.NewInt(2305843009213693951),
		Parties:   ids,
		K:         parties/2 + 1,
		Receivers: []string{ids[0]},
		Session:   "bench",
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, parties)
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			_, errs[i] = sum.Run(ctx, mbs[id], cfg, big.NewInt(int64(i*100)))
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
