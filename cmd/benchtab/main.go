// Command benchtab regenerates every table and figure of the paper
// ("On the Confidential Auditing of Distributed Computing Systems",
// Shen, Liu, Zhao — TAMU TR 2003-8-2 / ICDCS 2004) from the running
// implementation, plus the measured comparisons behind the paper's
// qualitative claims. See EXPERIMENTS.md for the index.
//
// Usage:
//
//	benchtab -table all        # Tables 1-6
//	benchtab -figure all       # Figures 1-7
//	benchtab -metrics          # eqs. 10-13 sweeps
//	benchtab -compare          # relaxed vs classical SMC measurements
//	benchtab -all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	var (
		table     = flag.String("table", "", "regenerate a paper table: 1..6 or all")
		figure    = flag.String("figure", "", "regenerate a paper figure: 1..7 or all")
		metrics   = flag.Bool("metrics", false, "sweep the confidentiality metrics (eqs. 10-13)")
		compare   = flag.Bool("compare", false, "measure relaxed vs classical SMC cost (claims C1-C3)")
		benchdiff = flag.String("benchdiff", "", "compare two bench artifacts (old.json,new.json); fails on headline regression or rows with missing fields")
		all       = flag.Bool("all", false, "everything")
	)
	flag.Parse()

	if *benchdiff != "" {
		if err := runBenchDiff(*benchdiff); err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		return
	}
	if *all {
		*table, *figure, *metrics, *compare = "all", "all", true, true
	}
	if *table == "" && *figure == "" && !*metrics && !*compare {
		flag.Usage()
		os.Exit(2)
	}
	if *table != "" {
		if err := runTables(*table); err != nil {
			log.Fatalf("tables: %v", err)
		}
	}
	if *figure != "" {
		if err := runFigures(*figure); err != nil {
			log.Fatalf("figures: %v", err)
		}
	}
	if *metrics {
		if err := runMetrics(); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	if *compare {
		if err := runCompare(); err != nil {
			log.Fatalf("compare: %v", err)
		}
	}
}

func section(title string) {
	fmt.Printf("\n==================================================================\n")
	fmt.Printf("%s\n", title)
	fmt.Printf("==================================================================\n")
}
