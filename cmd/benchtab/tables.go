package main

import (
	"fmt"
	"strings"

	"confaudit/internal/logmodel"
)

// runTables regenerates Tables 1-6 from the embedded paper fixture.
func runTables(which string) error {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		return err
	}
	want := func(n string) bool { return which == "all" || which == n }
	if want("1") {
		printTable1(ex)
	}
	for i, node := range []string{"P0", "P1", "P2", "P3"} {
		n := fmt.Sprint(i + 2)
		if want(n) {
			printFragmentTable(ex, i+2, node)
		}
	}
	if want("6") {
		printTable6(ex)
	}
	return nil
}

func printRow(widths []int, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = pad(c, widths[i])
	}
	fmt.Println("| " + strings.Join(parts, " | ") + " |")
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func printTable1(ex *logmodel.PaperExample) {
	section("TABLE 1 — AN EXAMPLE OF THE GLOBAL EVENT LOG")
	cols := []logmodel.Attr{"time", "id", "protocl", "Tid", "C1", "C2", "C3"}
	widths := []int{8, 19, 4, 7, 8, 4, 7, 10}
	header := append([]string{"glsn"}, attrsToStrings(cols)...)
	printRow(widths, header)
	for _, rec := range ex.Records {
		cells := []string{rec.GLSN.String()}
		for _, a := range cols {
			cells = append(cells, rec.Values[a].Render())
		}
		printRow(widths, cells)
	}
}

func printFragmentTable(ex *logmodel.PaperExample, tableNo int, node string) {
	section(fmt.Sprintf("TABLE %d — EVENT LOG FRAGMENTS STORED IN DLA NODE %s", tableNo, node))
	cols := ex.Partition.NodeAttrs(node)
	widths := make([]int, len(cols)+1)
	widths[0] = 8
	for i, a := range cols {
		widths[i+1] = max(len(string(a)), 19)
	}
	printRow(widths, append([]string{"glsn"}, attrsToStrings(cols)...))
	for _, rec := range ex.Records {
		frag := ex.Partition.Split(rec)[node]
		cells := []string{frag.GLSN.String()}
		for _, a := range cols {
			if v, ok := frag.Values[a]; ok {
				cells = append(cells, v.Render())
			} else {
				cells = append(cells, "") // empty column, as in the paper
			}
		}
		printRow(widths, cells)
	}
}

func printTable6(ex *logmodel.PaperExample) {
	section("TABLE 6 — ACCESS CONTROL TABLE")
	widths := []int{9, 4, 20}
	printRow(widths, []string{"Ticket ID", "Type", "glsn"})
	for _, id := range []string{"T1", "T2", "T3"} {
		glsns := make([]string, 0, len(ex.TicketGrants[id]))
		for _, g := range ex.TicketGrants[id] {
			glsns = append(glsns, g.String())
		}
		printRow(widths, []string{id, "W/R", strings.Join(glsns, ", ")})
	}
}

func attrsToStrings(attrs []logmodel.Attr) []string {
	out := make([]string, len(attrs))
	for i, a := range attrs {
		out[i] = string(a)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
