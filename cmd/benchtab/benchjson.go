package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Bench artifact comparison: `benchtab -benchdiff old.json,new.json`
// loads two BENCH_PR*.json artifacts written by scripts/bench.sh,
// prints the ratio table between the two "after" sections, and fails
// when either headline benchmark regressed by more than the tolerance.
// `benchtab -benchdiff file.json` (one path) instead diffs the
// artifact's embedded "baseline" section against its "after" section —
// the two sides of a single bench.sh run's comparison, measured on the
// same box in the same period. Prefer the single-file form for the
// pre-merge gate: the hosting box's absolute speed drifts between PRs
// (shared vCPUs), so cross-artifact ns/op ratios conflate machine drift
// with code changes, while the embedded baseline is re-measured from
// the previous PR's tree on the SAME box whenever the artifact is
// regenerated. Rows with missing or null fields are refused outright —
// a silently skipped row is how an alloc regression hides — so
// artifacts must be regenerated with the current bench.sh before they
// can be compared.

type benchRow struct {
	Name     string   `json:"name"`
	NsOp     *float64 `json:"ns_op"`
	BOp      *float64 `json:"b_op"`
	AllocsOp *float64 `json:"allocs_op"`
}

type benchFile struct {
	Benchtime string     `json:"benchtime"`
	Baseline  []benchRow `json:"baseline"`
	After     []benchRow `json:"after"`

	// Ingest knee sections (dlaload burst sweeps). Ingest is the head
	// tree, IngestBaseline the same sweep from the BASE_REF worktree in
	// the same bench.sh run; IngestScaling holds the unpaced run at
	// pinned GOMAXPROCS values. Older artifacts may lack all three.
	Ingest         *ingestSection            `json:"ingest"`
	IngestBaseline *ingestSection            `json:"ingest_baseline"`
	IngestScaling  map[string]*ingestSection `json:"ingest_scaling"`
}

type ingestSection struct {
	Points []ingestPoint `json:"points"`
}

type ingestPoint struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
}

// knee is the headline rec/s row: the best achieved throughput across
// the sweep's offered-load points.
func (s *ingestSection) knee() float64 {
	if s == nil {
		return 0
	}
	var best float64
	for _, p := range s.Points {
		if p.AchievedRPS > best {
			best = p.AchievedRPS
		}
	}
	return best
}

// headlineBenches are the two gate benchmarks: more than
// regressionTolerance on either fails the diff.
var headlineBenches = []string{
	"BenchmarkFigure2DLAQuery",
	"BenchmarkClusterLogThroughput",
}

const regressionTolerance = 1.10

func loadBenchFile(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.After) == 0 {
		return nil, fmt.Errorf("%s: no \"after\" rows", path)
	}
	for _, r := range f.After {
		if r.Name == "" {
			return nil, fmt.Errorf("%s: row with empty name", path)
		}
		if r.NsOp == nil || r.BOp == nil || r.AllocsOp == nil {
			return nil, fmt.Errorf("%s: row %q is missing ns_op, b_op, or allocs_op — regenerate with scripts/bench.sh", path, r.Name)
		}
	}
	return &f, nil
}

func runBenchDiff(spec string) error {
	parts := strings.Split(spec, ",")
	var oldRowsSrc []benchRow
	var title string
	switch {
	case len(parts) == 1 && parts[0] != "":
		// Single artifact: embedded baseline vs after.
		f, err := loadBenchFile(parts[0])
		if err != nil {
			return err
		}
		if len(f.Baseline) == 0 {
			return fmt.Errorf("%s: no \"baseline\" rows to diff against", parts[0])
		}
		oldRowsSrc = f.Baseline
		title = fmt.Sprintf("Benchmark diff: %s baseline -> after", parts[0])
	case len(parts) == 2 && parts[0] != "" && parts[1] != "":
		oldF, err := loadBenchFile(parts[0])
		if err != nil {
			return err
		}
		oldRowsSrc = oldF.After
		title = fmt.Sprintf("Benchmark diff: %s -> %s", parts[0], parts[1])
	default:
		return fmt.Errorf("-benchdiff wants file.json or old.json,new.json, got %q", spec)
	}
	newF, err := loadBenchFile(parts[len(parts)-1])
	if err != nil {
		return err
	}
	oldRows := make(map[string]benchRow, len(oldRowsSrc))
	for _, r := range oldRowsSrc {
		oldRows[r.Name] = r
	}

	section(title)
	fmt.Printf("%-45s %14s %14s %7s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "B/op Δ", "allocs Δ")
	var failures []string
	for _, nr := range newF.After {
		or, ok := oldRows[nr.Name]
		if !ok {
			fmt.Printf("%-45s %14s %14.0f %7s %9s %9s\n", nr.Name, "-", *nr.NsOp, "new", "-", "-")
			continue
		}
		speedup := *or.NsOp / *nr.NsOp
		fmt.Printf("%-45s %14.0f %14.0f %6.2fx %+8.0f %+8.0f\n",
			nr.Name, *or.NsOp, *nr.NsOp, speedup, *nr.BOp-*or.BOp, *nr.AllocsOp-*or.AllocsOp)
	}
	for _, name := range headlineBenches {
		or, okOld := oldRows[name]
		var nr *benchRow
		for i := range newF.After {
			if newF.After[i].Name == name {
				nr = &newF.After[i]
			}
		}
		if !okOld || nr == nil {
			failures = append(failures, fmt.Sprintf("headline benchmark %s absent from both artifacts' after sections", name))
			continue
		}
		if *nr.NsOp > *or.NsOp*regressionTolerance {
			failures = append(failures, fmt.Sprintf("%s regressed: %.0f -> %.0f ns/op (> %.0f%% tolerance)",
				name, *or.NsOp, *nr.NsOp, (regressionTolerance-1)*100))
		}
	}
	// Ingest knee gate: the artifact's same-run dlaload sweep against
	// the BASE_REF worktree's. Only artifacts carrying both sections are
	// gated (older ones predate the sections); a head knee more than the
	// tolerance below the baseline knee fails like a headline ns/op row.
	if newF.Ingest != nil && newF.IngestBaseline != nil {
		head, base := newF.Ingest.knee(), newF.IngestBaseline.knee()
		if base <= 0 {
			failures = append(failures, "ingest_baseline section has no achieved_rps rows")
		} else {
			fmt.Printf("\n%-45s %14.0f %14.0f %6.2fx\n", "ingest knee (rec/s, same-run baseline)", base, head, head/base)
			if head*regressionTolerance < base {
				failures = append(failures, fmt.Sprintf("ingest knee regressed: %.0f -> %.0f rec/s (> %.0f%% tolerance)",
					base, head, (regressionTolerance-1)*100))
			}
		}
		g1, g4 := newF.IngestScaling["gomaxprocs1"], newF.IngestScaling["gomaxprocs4"]
		if g1.knee() <= 0 || g4.knee() <= 0 {
			failures = append(failures, "ingest_scaling rows missing (want gomaxprocs1 and gomaxprocs4)")
		} else {
			// Informational on a 1-vCPU box, where the two rows tie; on
			// multi-core hosts the ratio shows the node-side fan-out.
			fmt.Printf("%-45s %14.0f %14.0f %6.2fx\n", "ingest scaling (GOMAXPROCS 1 -> 4)", g1.knee(), g4.knee(), g4.knee()/g1.knee())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchdiff: %s", strings.Join(failures, "; "))
	}
	fmt.Printf("\nheadline benchmarks within %.0f%% tolerance\n", (regressionTolerance-1)*100)
	return nil
}
