package main

import (
	"fmt"

	"confaudit/internal/logmodel"
	"confaudit/internal/metrics"
	"confaudit/internal/workload"
)

// runMetrics sweeps the §5 confidentiality metrics (eqs. 10-13).
func runMetrics() error {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		return err
	}

	section("EQ. 10 — STORE CONFIDENTIALITY C_store(Log) = v·u/w (paper example)")
	fmt.Printf("%-10s %3s %3s %3s %10s\n", "glsn", "w", "v", "u", "C_store")
	for _, rec := range ex.Records {
		w := len(rec.Values)
		v := 0
		for a := range rec.Values {
			if ex.Schema.Undefined[a] {
				v++
			}
		}
		u := ex.Partition.CoverCount(rec)
		fmt.Printf("%-10s %3d %3d %3d %10.4f\n", rec.GLSN, w, v, u, metrics.Store(ex.Partition, rec))
	}

	section("EQ. 10 SWEEP — C_store vs cluster width n and undefined attrs v")
	fmt.Printf("%-6s", "v\\n")
	clusterSizes := []int{1, 2, 4, 6, 8}
	for _, n := range clusterSizes {
		fmt.Printf("%9d", n)
	}
	fmt.Println()
	for _, undef := range []int{0, 2, 4, 6} {
		schema, err := workload.ECommerceSchema(undef)
		if err != nil {
			return err
		}
		recs := workload.New(7).Transactions(schema, 1, 3)
		rec := logmodel.Record{GLSN: 1, Values: recs[0]}
		fmt.Printf("%-6d", undef)
		for _, n := range clusterSizes {
			part, err := workload.RoundRobinPartition(schema, n)
			if err != nil {
				return err
			}
			fmt.Printf("%9.4f", metrics.Store(part, rec))
		}
		fmt.Println()
	}
	fmt.Println("(more undefined attributes and more covering nodes raise store confidentiality)")

	section("EQ. 11 — AUDITING CONFIDENTIALITY C_auditing(Q) = (t+q)/(s+q)")
	queries := []string{
		`C1 > 30`,
		`C1 > 30 AND Tid = "T1100265"`,
		`protocl = "UDP" AND id = "U1"`,
		`C1 > 30 AND Tid = "T1100265" AND (time = "x" OR id = "U1")`,
		`id = C3`,
		`(time = "x" OR id = "U1") AND (protocl = "UDP" OR C1 = 20)`,
	}
	fmt.Printf("%-62s %10s\n", "criteria Q", "C_auditing")
	for _, q := range queries {
		c, err := metrics.AuditingCriteria(q, ex.Partition)
		if err != nil {
			return err
		}
		fmt.Printf("%-62s %10.4f\n", q, c)
	}
	fmt.Println("(criteria dominated by cross predicates reveal less to each node)")

	section("EQ. 13 — DLA CONFIDENTIALITY C_DLA(I,P): mean C_query over a workload")
	fmt.Printf("%-8s %-12s %10s\n", "nodes", "undef attrs", "C_DLA")
	for _, n := range []int{2, 4, 8} {
		for _, undef := range []int{2, 4} {
			schema, err := workload.ECommerceSchema(undef)
			if err != nil {
				return err
			}
			part, err := workload.RoundRobinPartition(schema, n)
			if err != nil {
				return err
			}
			raw := workload.New(11).Transactions(schema, 40, 5)
			recs := make([]logmodel.Record, len(raw))
			for i, vals := range raw {
				recs[i] = logmodel.Record{GLSN: logmodel.GLSN(i + 1), Values: vals}
			}
			c, err := metrics.DLA(part, recs, workload.QueryMix(undef))
			if err != nil {
				return err
			}
			fmt.Printf("%-8d %-12d %10.4f\n", n, undef, c)
		}
	}
	fmt.Println("(wider clusters with more application-private attributes audit more confidentially)")
	return nil
}
