package main

import (
	"path/filepath"
	"testing"

	"confaudit/internal/cluster"
	"confaudit/internal/logmodel"
)

func TestProvisionPaperLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prov")
	err := provision([]string{"-out", dir, "-paper", "-addr-base", "127.0.0.1:7500", "-group-bits", "768"})
	if err != nil {
		t.Fatal(err)
	}
	common, err := cluster.LoadCommon(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(common.Roster) != 4 || common.Roster[0] != "P0" {
		t.Fatalf("roster = %v", common.Roster)
	}
	if common.Addresses["P3"] != "127.0.0.1:7503" {
		t.Fatalf("addresses = %v", common.Addresses)
	}
	if common.GroupBits != 768 {
		t.Fatalf("group bits = %d", common.GroupBits)
	}
	part, err := logmodel.FromSpec(common.Partition)
	if err != nil {
		t.Fatal(err)
	}
	if part.Owner("Tid") != "P2" {
		t.Fatalf("paper partition not preserved: Tid on %q", part.Owner("Tid"))
	}
	for _, id := range common.Roster {
		if _, err := cluster.LoadNode(dir, id); err != nil {
			t.Fatalf("node file for %s: %v", id, err)
		}
	}
	if _, err := cluster.LoadIssuer(dir); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionGenerated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prov")
	err := provision([]string{"-out", dir, "-nodes", "3", "-undefined", "2", "-addr-base", "127.0.0.1:7600"})
	if err != nil {
		t.Fatal(err)
	}
	common, err := cluster.LoadCommon(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(common.Roster) != 3 {
		t.Fatalf("roster = %v", common.Roster)
	}
}

func TestProvisionBadFlags(t *testing.T) {
	if err := provision([]string{"-out", t.TempDir(), "-addr-base", "not-an-addr"}); err == nil {
		t.Fatal("bad addr-base accepted")
	}
	if err := provision([]string{"-out", t.TempDir(), "-group-bits", "123"}); err == nil {
		t.Fatal("bad group bits accepted")
	}
}

func TestRunRequiresID(t *testing.T) {
	if err := run([]string{"-dir", t.TempDir()}); err == nil {
		t.Fatal("run without -id accepted")
	}
}
