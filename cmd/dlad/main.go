// Command dlad is the DLA node daemon. It has two modes:
//
//	dlad provision -out <dir> [-nodes 4] [-undefined 4] [-paper]
//	    [-addr-base 127.0.0.1:7100]
//		generate cluster keys, accumulator parameters, the attribute
//		partition, and the TCP address book, writing one common file,
//		one private file per node, and the ticket-issuer key.
//
//	dlad run -dir <dir> -id P0 [-data <dir>] [-backend memory|wal|disk]
//	    [-sync always|interval|never] [-segment-bytes N]
//	    [-checkpoint-every N] [-pprof 127.0.0.1:6060]
//	    [-ingest-rate N] [-ingest-burst N] [-ingest-inflight-bytes N]
//		start one DLA node: fragment store, glsn sequencer/voter,
//		audit executor, and integrity responder, serving over TCP
//		until interrupted. -backend selects durability: the JSON-lines
//		WAL (default when -data is set) or the crash-safe segment
//		store; -sync and the segment flags tune it. The -ingest-*
//		flags bound ingest admission (token-bucket rate and inflight
//		bytes); refused stores answer ERR_OVERLOADED and streaming
//		writers back off. With -pprof, an HTTP server exposes
//		net/http/pprof profiles, expvar counters, and the
//		/debug/dla/storage and /debug/dla/ingest status endpoints for
//		live diagnosis (`dlactl storage|ingest status`).
package main

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"confaudit/internal/audit"
	"confaudit/internal/cluster"
	"confaudit/internal/integrity"
	"confaudit/internal/logmodel"
	"confaudit/internal/mathx"
	"confaudit/internal/resilience"
	"confaudit/internal/storage"
	"confaudit/internal/telemetry"
	"confaudit/internal/transport"
	"confaudit/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlad: ")
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "provision":
		err = provision(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlad provision|run [flags]")
	os.Exit(2)
}

func provision(args []string) error {
	fs := flag.NewFlagSet("provision", flag.ExitOnError)
	var (
		out       = fs.String("out", "provision", "output directory")
		nodes     = fs.Int("nodes", 4, "DLA cluster size")
		undefined = fs.Int("undefined", 4, "number of undefined attributes C1..Cn")
		paper     = fs.Bool("paper", false, "use the paper's exact Tables 2-5 partition instead of a generated one")
		addrBase  = fs.String("addr-base", "127.0.0.1:7100", "first node address; subsequent nodes use consecutive ports")
		groupBits = fs.Int("group-bits", 1024, "commutative-crypto group size (768, 1024, 1536, 2048)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var part *logmodel.Partition
	if *paper {
		ex, err := logmodel.NewPaperExample()
		if err != nil {
			return err
		}
		part = ex.Partition
	} else {
		schema, err := workload.ECommerceSchema(*undefined)
		if err != nil {
			return err
		}
		if part, err = workload.RoundRobinPartition(schema, *nodes); err != nil {
			return err
		}
	}
	group, err := mathx.StandardGroup(*groupBits)
	if err != nil {
		return err
	}
	log.Printf("generating keys for %d nodes (RSA 1024, accumulator 512)...", len(part.Nodes()))
	boot, err := cluster.NewBootstrap(rand.Reader, part, group, cluster.BootstrapOptions{})
	if err != nil {
		return err
	}
	host, portStr, err := net.SplitHostPort(*addrBase)
	if err != nil {
		return fmt.Errorf("bad -addr-base: %w", err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("bad -addr-base port: %w", err)
	}
	addrs := make(map[string]string, len(boot.Roster))
	for i, id := range boot.Roster {
		addrs[id] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	common, nodeProv, issuer := boot.Provision(addrs)
	if err := cluster.SaveProvision(*out, common, nodeProv, issuer); err != nil {
		return err
	}
	log.Printf("provisioned cluster %v into %s", boot.Roster, *out)
	for id, a := range addrs {
		log.Printf("  %s -> %s", id, a)
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var (
		dir        = fs.String("dir", "provision", "provisioning directory")
		id         = fs.String("id", "", "this node's ID (required)")
		data       = fs.String("data", "", "data directory for durable state (empty = in-memory only)")
		backend    = fs.String("backend", "", "durability backend: memory, wal, or disk (empty = wal when -data is set, else memory)")
		sync       = fs.String("sync", string(storage.SyncAlways), "fsync policy for acked appends: always, interval, or never")
		syncEvery  = fs.Duration("sync-every", 0, "fsync interval under -sync interval (0 = 50ms)")
		segBytes   = fs.Int64("segment-bytes", 0, "disk backend: seal the active segment at this size (0 = 4MiB)")
		cpEvery    = fs.Int("checkpoint-every", 0, "disk backend: checkpoint after this many sealed segments (0 = 4)")
		compactAt  = fs.Int("compact-segments", 0, "disk backend: sealed-segment count that triggers compaction (0 = 8)")
		pprof      = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (empty = disabled)")
		leakBudget = fs.Float64("leak-budget", 0, "default per-querier leak budget (sum of 1-C_query); 0 disables the alarm")
		ingestRPS  = fs.Float64("ingest-rate", 0, "ingest admission: records/sec token-bucket refill (0 = unbounded)")
		ingestBst  = fs.Int("ingest-burst", 0, "ingest admission: token-bucket capacity in records (0 = one second's refill)")
		ingestInfl = fs.Int64("ingest-inflight-bytes", 0, "ingest admission: cap on store bytes concurrently being processed (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("-id is required")
	}
	// Resolve the durability backend up front, through the validated
	// options struct, so a typo dies here instead of after the node has
	// joined the cluster.
	if *backend == "" {
		if *data != "" {
			*backend = storage.BackendWAL
		} else {
			*backend = storage.BackendMemory
		}
	}
	sOpts := storage.Options{
		Backend:         *backend,
		Dir:             *data,
		Sync:            storage.SyncPolicy(*sync),
		SyncEvery:       *syncEvery,
		SegmentBytes:    *segBytes,
		CheckpointEvery: *cpEvery,
		CompactSegments: *compactAt,
	}
	if err := sOpts.Validate(); err != nil {
		return err
	}
	if *backend != storage.BackendMemory && *data == "" {
		return fmt.Errorf("-backend %s requires -data", *backend)
	}
	if *leakBudget > 0 {
		telemetry.L.SetDefaultBudget(*leakBudget)
	}
	// One node per dlad process: stamp its ID on flight events recorded
	// deep in the pipeline (WAL, breaker) that don't know who owns them.
	telemetry.F.SetDefaultNode(*id)
	common, err := cluster.LoadCommon(*dir)
	if err != nil {
		return err
	}
	nodeProv, err := cluster.LoadNode(*dir, *id)
	if err != nil {
		return err
	}
	boot, err := cluster.RestoreBootstrap(common, map[string]*cluster.NodeProvision{*id: nodeProv}, nil)
	if err != nil {
		return err
	}
	tcp := transport.NewTCPNetwork(common.Addresses)
	ep, err := tcp.Endpoint(*id)
	if err != nil {
		return err
	}
	// Retrying sends with a per-peer circuit breaker: transient TCP
	// failures are retried with backoff, and a down peer fails fast
	// instead of stalling every protocol round on dial timeouts.
	mb := transport.NewMailbox(resilience.Wrap(ep, resilience.Policy{}))
	defer mb.Close() //nolint:errcheck
	cfg := boot.NodeConfig(*id)
	cfg.Admission = cluster.AdmissionConfig{
		RecordsPerSec:    *ingestRPS,
		Burst:            *ingestBst,
		MaxInflightBytes: *ingestInfl,
	}
	switch *backend {
	case storage.BackendDisk:
		st, err := storage.Open(sOpts, boot.AccParams, nil)
		if err != nil {
			return err
		}
		cfg.Storage = st // node takes ownership; CloseStorage releases it
		log.Printf("segment store open in %s (sync=%s)", *data, sOpts.Sync)
	case storage.BackendWAL:
		cfg.DataDir = *data
		cfg.WALSync = sOpts.Sync
		cfg.WALSyncEvery = sOpts.SyncEvery
	}
	node, err := cluster.New(cfg, mb)
	if err != nil {
		return err
	}
	defer node.CloseStorage() //nolint:errcheck
	if q := node.QuarantinedExtents(); len(q) > 0 {
		log.Printf("WARNING: recovered degraded; quarantined extents: %v", q)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *pprof != "" {
		expvar.NewString("dlad_node").Set(*id)
		telemetry.Mount(http.DefaultServeMux)
		// Live storage-engine status (backend, segments, checkpoint,
		// recovery work, quarantine) next to the telemetry endpoints.
		http.HandleFunc("/debug/dla/storage", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(node.StorageStatus()) //nolint:errcheck
		})
		// Live ingest-admission state (bounds, bucket fill, inflight
		// bytes, admit/reject counts) for `dlactl ingest status`.
		http.HandleFunc("/debug/dla/ingest", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(node.AdmissionStatus()) //nolint:errcheck
		})
		srv := &http.Server{Addr: *pprof} // DefaultServeMux: pprof + expvar + /debug/dla
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("pprof server: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			srv.Close() //nolint:errcheck
		}()
		log.Printf("pprof/expvar on http://%s/debug/pprof/, telemetry on /debug/dla/", *pprof)
	}
	node.Start(ctx)
	go audit.Serve(ctx, node)
	go integrity.Serve(ctx, mb, boot.Roster, boot.AccParams, node)                     //nolint:errcheck
	go integrity.ServeRequests(ctx, mb, boot.Roster, boot.AccParams, node, node.GLSNs) //nolint:errcheck
	log.Printf("node %s serving on %s (roster %v)", *id, common.Addresses[*id], boot.Roster)
	<-ctx.Done()
	log.Printf("shutting down")
	node.Wait()
	return nil
}
