package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"confaudit/internal/logmodel"
	"confaudit/internal/telemetry"
	"confaudit/pkg/dla"
)

// TestTraceRendersConjunctionQuery drives a conjunction query across
// the cluster, then renders its trace the way `dlactl trace` does —
// through the HTTP debug endpoint — and checks the span tree is
// complete (coordinator -> subqueries -> ring-relay chunks) and free of
// plaintext attribute values.
func TestTraceRendersConjunctionQuery(t *testing.T) {
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dla.Deploy(dla.ClusterOptions{Partition: ex.Partition})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	s, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: "ctl-u", TicketID: "T-ctl"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	for _, rec := range ex.Records {
		if _, err := s.Log(ctx, rec.Values); err != nil {
			t.Fatal(err)
		}
	}
	matches, session, _, err := s.QueryCertified(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("conjunction query found no matches")
	}

	mux := http.NewServeMux()
	telemetry.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var list strings.Builder
	if err := fetchTrace(&list, srv.URL, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list.String(), session) {
		t.Fatalf("session list does not mention %q:\n%s", session, list.String())
	}

	var tree strings.Builder
	if err := fetchTrace(&tree, srv.URL, session); err != nil {
		t.Fatal(err)
	}
	out := tree.String()
	t.Logf("rendered trace:\n%s", out)
	for _, want := range []string{"audit.query", "audit.exec", "audit.subquery.", "smc.relay_chunk", "smc.intersect.run"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
	// Plaintext from the criterion must never appear in the trace.
	for _, leak := range []string{"UDP", "U1", "protocl"} {
		if strings.Contains(out, leak) {
			t.Errorf("rendered tree leaks %q:\n%s", leak, out)
		}
	}

	if err := fetchTrace(&tree, srv.URL, "no-such-session"); err == nil {
		t.Error("fetchTrace succeeded for an unknown session")
	}
}
