package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"confaudit/internal/telemetry"
)

// nodeDebugServer serves hand-built per-node debug fragments the way a
// dlad -pprof port does, so the fan-out/merge paths can be exercised
// against multiple "nodes" inside one test process.
func nodeDebugServer(t *testing.T, trace *telemetry.TraceView, ledger *telemetry.LedgerSnapshot) (*httptest.Server, string) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/dla/trace/", func(w http.ResponseWriter, r *http.Request) {
		if trace == nil {
			http.Error(w, "no trace", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(trace) //nolint:errcheck
	})
	mux.HandleFunc("/debug/dla/leaks", func(w http.ResponseWriter, r *http.Request) {
		snap := telemetry.LedgerSnapshot{}
		if ledger != nil {
			snap = *ledger
		}
		json.NewEncoder(w).Encode(snap) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, strings.TrimPrefix(srv.URL, "http://")
}

// TestClusterTraceMergesAcrossNodes drives the `dlactl trace -addrs`
// path: three nodes, one with no fragment for the session (skipped with
// a warning), the other two stitched into one tree across the remote
// parent ref.
func TestClusterTraceMergesAcrossNodes(t *testing.T) {
	session := "q/ctl-u/7"
	started := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	coord := &telemetry.TraceView{
		Session: session, Started: started, Sessions: 1,
		Spans: []telemetry.SpanView{{
			ID: "P0:1", Name: "audit.query", Node: "P0", Session: session, Outcome: "ok", DurMS: 20,
			Children: []telemetry.SpanView{{
				ID: "P0:2", Name: "audit.dispatch", Node: "P0", Session: session,
				Outcome: "ok", StartMS: 1, DurMS: 18, Count: 2,
			}},
		}},
	}
	// Executor clock 30ms behind: its root would start "before" the
	// dispatch without skew normalization.
	exec := &telemetry.TraceView{
		Session: session, Started: started.Add(-30 * time.Millisecond), Sessions: 1,
		Spans: []telemetry.SpanView{{
			ID: "P1:1", Parent: "P0:2", Name: "audit.exec", Node: "P1",
			Session: session, Outcome: "ok", DurMS: 12, Bytes: 4096,
		}},
	}
	_, addrA := nodeDebugServer(t, coord, nil)
	_, addrB := nodeDebugServer(t, exec, nil)
	_, addrC := nodeDebugServer(t, nil, nil) // node not involved in the query

	var out strings.Builder
	if err := fetchClusterTrace(&out, []string{addrA, addrB, addrC}, session); err != nil {
		t.Fatal(err)
	}
	tree := out.String()
	t.Logf("merged tree:\n%s", tree)
	if !strings.Contains(tree, "nodes: P0, P1") {
		t.Errorf("merged tree missing node annotation:\n%s", tree)
	}
	for _, want := range []string{"audit.query P0", "audit.dispatch P0", "audit.exec P1", "4.0KB"} {
		if !strings.Contains(tree, want) {
			t.Errorf("merged tree missing %q:\n%s", want, tree)
		}
	}
	// Stitched: exactly one top-level root in the merged forest (root
	// lines render at column 0, children under "│  "/"   " prefixes).
	if strings.Count(tree, "\n└─ ")+strings.Count(tree, "\n├─ ") > 1 {
		t.Errorf("executor fragment not stitched under the coordinator:\n%s", tree)
	}

	// Every node down -> hard error, not an empty tree.
	if err := fetchClusterTrace(&out, []string{addrC}, session); err == nil {
		t.Error("fetchClusterTrace succeeded with no fragments")
	}
}

// TestClusterLeaksMergesLedgers drives the `dlactl leaks -addrs` path:
// the coordinator's scored entry and an executor's disclosures for the
// same session merge into one per-querier record.
func TestClusterLeaksMergesLedgers(t *testing.T) {
	session := "q/ctl-u/9"
	coordLedger := &telemetry.LedgerSnapshot{
		Queries: 1, CDLA: 0.5,
		Queriers: []telemetry.QuerierView{{
			Querier: "ctl-u", Queries: 1, MeanCAud: 0.8, MeanCQuery: 0.5, Leakage: 0.5,
			Entries: []telemetry.LedgerEntry{{
				Session: session, CAuditing: 0.8, CQuery: 0.5, Leakage: 0.5,
				Disclosures: []telemetry.Disclosure{{Kind: telemetry.DiscResultCount, Node: "P0", N: 3}},
			}},
		}},
	}
	execLedger := &telemetry.LedgerSnapshot{
		Queriers: []telemetry.QuerierView{{
			Querier: "ctl-u",
			Entries: []telemetry.LedgerEntry{{
				Session: session,
				Disclosures: []telemetry.Disclosure{
					{Kind: telemetry.DiscSetCardinality, Node: "P1", Plan: "equality", N: 40},
					{Kind: telemetry.DiscIntersection, Node: "P1", N: 3},
				},
			}},
		}},
	}
	_, addrA := nodeDebugServer(t, nil, coordLedger)
	_, addrB := nodeDebugServer(t, nil, execLedger)

	var out strings.Builder
	if err := fetchClusterLeaks(&out, []string{addrA, addrB}, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	t.Logf("merged ledger:\n%s", text)
	if !strings.Contains(text, "1 queries by 1 querier(s)") {
		t.Errorf("merge double-counted the session:\n%s", text)
	}
	for _, want := range []string{"querier ctl-u", "C_query 0.5000", "set_cardinality[equality] @P1 n=40", "intersection_size @P1 n=3", "result_count @P0 n=3"} {
		if !strings.Contains(text, want) {
			t.Errorf("merged ledger missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := fetchClusterLeaks(&out, []string{addrA, addrB}, true); err != nil {
		t.Fatal(err)
	}
	var snap telemetry.LedgerSnapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("-json output not a LedgerSnapshot: %v", err)
	}
	if snap.Queries != 1 || len(snap.Queriers) != 1 || len(snap.Queriers[0].Entries[0].Disclosures) != 3 {
		t.Fatalf("unexpected merged snapshot: %+v", snap)
	}
}
