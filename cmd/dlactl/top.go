package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"confaudit/internal/telemetry"
)

// cmdTop is the cluster's live ingest-health view: it polls
// /debug/dla/prom on every -addrs target and renders one refreshing
// row per node — ingest rate (from successive scrapes), fsync
// p50/p99, the reserved/durable watermark lag, admission headroom,
// breaker trips, and flight-event counts. Everything shown is parsed
// back out of the zero-plaintext exposition; dlactl adds no channel
// of its own.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "dlad -pprof address serving /debug/dla")
	addrs := fs.String("addrs", "", "comma-separated dlad -pprof addresses; one table row per node")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	rounds := fs.Int("n", 0, "number of refreshes before exiting (0 means run until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := splitAddrs(*addrs)
	if len(targets) == 0 {
		targets = []string{*addr}
	}
	var prev map[string]topSample
	for i := 0; *rounds == 0 || i < *rounds; i++ {
		if i > 0 {
			time.Sleep(*interval)
			// Redraw in place: clear screen, home the cursor.
			fmt.Print("\x1b[2J\x1b[H")
		}
		cur, err := topFrame(os.Stdout, targets, prev)
		if err != nil {
			return err
		}
		prev = cur
	}
	return nil
}

// topSample is one node's scrape plus when it was taken, kept between
// frames so counters can be turned into rates.
type topSample struct {
	scrape *telemetry.PromScrape
	at     time.Time
}

// Exposition names of the metrics the table reads, derived from the
// telemetry constants so a rename cannot silently blank a column.
var (
	promStoreRecords = telemetry.PromName(telemetry.CtrStoreRecords)
	promFsync        = telemetry.PromName(telemetry.HistWALFsync)
	promReserved     = telemetry.PromName(telemetry.GaugeGLSNReserved)
	promDurable      = telemetry.PromName(telemetry.GaugeGLSNDurable)
	promAcked        = telemetry.PromName(telemetry.GaugeGLSNAcked)
	promTokens       = telemetry.PromName(telemetry.GaugeAdmissionTokens)
	promInflightB    = telemetry.PromName(telemetry.GaugeAdmissionBytes)
	promTrips        = telemetry.PromName(telemetry.CtrBreakerTrips)
	promFlight       = telemetry.PromName(telemetry.CtrFlightEvents)
)

// topFrame scrapes every target once and renders one table. It
// returns the scrapes so the next frame can compute rates; prev may
// be nil (first frame shows "-" rates). Unreachable nodes are warned
// about and skipped; the frame fails only if no node answered.
func topFrame(w io.Writer, targets []string, prev map[string]topSample) (map[string]topSample, error) {
	cur := make(map[string]topSample, len(targets))
	var b strings.Builder
	fmt.Fprintf(&b, "%-21s %8s %9s %9s %8s %8s %6s %6s %8s %4s %4s\n",
		"NODE", "REC/S", "P50FS(ms)", "P99FS(ms)", "RESV", "DURB", "LAG", "ACKD", "TOKENS", "BRK", "FLT")
	ok := 0
	for _, a := range targets {
		scrape, err := fetchPromScrape("http://" + a)
		now := time.Now()
		if err != nil {
			log.Printf("warning: %s: %v", a, err)
			continue
		}
		ok++
		cur[a] = topSample{scrape: scrape, at: now}
		rate := "-"
		if p, found := prev[a]; found {
			if dt := now.Sub(p.at).Seconds(); dt > 0 {
				rate = fmt.Sprintf("%.0f", (scrape.Counter(promStoreRecords)-p.scrape.Counter(promStoreRecords))/dt)
			}
		}
		reserved := scrape.Gauges[promReserved]
		durable := scrape.Gauges[promDurable]
		tokens := "-"
		if v, found := scrape.Gauges[promTokens]; found {
			tokens = fmt.Sprintf("%.0f", v)
			if ib, found := scrape.Gauges[promInflightB]; found && ib > 0 {
				tokens += fmt.Sprintf("/%.0fB", ib)
			}
		}
		fmt.Fprintf(&b, "%-21s %8s %9s %9s %8.0f %8.0f %6.0f %6.0f %8s %4.0f %4.0f\n",
			a, rate,
			fmtQuantile(scrape, promFsync, 0.5), fmtQuantile(scrape, promFsync, 0.99),
			reserved, durable, reserved-durable, scrape.Gauges[promAcked],
			tokens, scrape.Counter(promTrips), scrape.Counter(promFlight))
	}
	if ok == 0 {
		return nil, fmt.Errorf("no node returned metrics")
	}
	_, err := io.WriteString(w, b.String())
	return cur, err
}

// fmtQuantile renders a bucket-estimated quantile in ms, "-" when the
// histogram is absent or empty.
func fmtQuantile(s *telemetry.PromScrape, hist string, q float64) string {
	v := s.Quantile(hist, q)
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3g", v)
}

// fetchPromScrape pulls and parses one node's /debug/dla/prom.
func fetchPromScrape(baseURL string) (*telemetry.PromScrape, error) {
	resp, err := http.Get(baseURL + "/debug/dla/prom")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("prom endpoint: %s", resp.Status)
	}
	return telemetry.ParsePrometheus(resp.Body)
}
