package main

import (
	"crypto/rand"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"confaudit/internal/cluster"
	"confaudit/internal/logmodel"
	"confaudit/internal/mathx"
	"confaudit/internal/ticket"
)

func TestParseValueKinds(t *testing.T) {
	cases := []struct {
		in   string
		kind logmodel.Kind
	}{
		{"42", logmodel.KindInt},
		{"-7", logmodel.KindInt},
		{"3.14", logmodel.KindFloat},
		{"UDP", logmodel.KindString},
		{"12abc", logmodel.KindString},
		{"", logmodel.KindString},
	}
	for _, tc := range cases {
		if got := parseValue(tc.in); got.Kind != tc.kind {
			t.Errorf("parseValue(%q).Kind = %v, want %v", tc.in, got.Kind, tc.kind)
		}
	}
}

func newTestBootstrap(ex *logmodel.PaperExample) (*cluster.Bootstrap, error) {
	return cluster.NewBootstrap(rand.Reader, ex.Partition, mathx.Oakley768, cluster.BootstrapOptions{})
}

func TestCmdIssueEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Reuse dlad's provisioning logic shape: build a bootstrap and save.
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	boot, err := newTestBootstrap(ex)
	if err != nil {
		t.Fatal(err)
	}
	common, nodes, issuer := boot.Provision(map[string]string{"P0": "a", "P1": "b", "P2": "c", "P3": "d"})
	if err := cluster.SaveProvision(dir, common, nodes, issuer); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "ticket.json")
	if err := cmdIssue([]string{"-dir", dir, "-ticket-id", "T1", "-holder", "u0", "-ops", "WRD", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var wt wireTicket
	if err := json.Unmarshal(data, &wt); err != nil {
		t.Fatal(err)
	}
	tk := &ticket.Ticket{ID: wt.ID, Holder: wt.Holder, Sig: wt.Sig}
	for _, o := range wt.Ops {
		tk.Ops = append(tk.Ops, ticket.Op(o))
	}
	if err := ticket.Verify(boot.Issuer.Public(), tk); err != nil {
		t.Fatalf("issued ticket does not verify: %v", err)
	}
	if len(tk.Ops) != 3 {
		t.Fatalf("ops = %v", tk.Ops)
	}
	// Validation failures.
	if err := cmdIssue([]string{"-dir", dir, "-ticket-id", "T2", "-holder", "u0", "-ops", "X", "-out", out}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := cmdIssue([]string{"-dir", dir}); err == nil {
		t.Fatal("missing flags accepted")
	}
}
