package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"confaudit/internal/logmodel"
	"confaudit/internal/telemetry"
	"confaudit/pkg/dla"
)

// TestObsSmoke is the `make obs-smoke` gate: boot an in-memory cluster,
// run one conjunction query, and assert the full observability loop —
// a merged cluster-wide trace spanning at least 3 nodes and a non-empty
// leak ledger for the querier — through the same HTTP debug surface and
// merge code `dlactl trace -addrs` / `dlactl leaks -addrs` use.
func TestObsSmoke(t *testing.T) {
	telemetry.T.Reset()
	telemetry.L.Reset()
	ex, err := logmodel.NewPaperExample()
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dla.Deploy(dla.ClusterOptions{Partition: ex.Partition})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	s, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: "smoke-u", TicketID: "T-smoke"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	for _, rec := range ex.Records {
		if _, err := s.Log(ctx, rec.Values); err != nil {
			t.Fatal(err)
		}
	}
	matches, session, _, err := s.QueryCertified(ctx, `protocl = "UDP" AND id = "U1"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("conjunction query found no matches")
	}

	mux := http.NewServeMux()
	telemetry.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var tree strings.Builder
	if err := fetchClusterTrace(&tree, []string{addr}, session); err != nil {
		t.Fatal(err)
	}
	out := tree.String()
	t.Logf("merged cluster trace:\n%s", out)
	var nodesLine string
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "nodes: "); ok {
			nodesLine = rest
		}
	}
	if nodesLine == "" {
		t.Fatalf("merged tree carries no node annotation:\n%s", out)
	}
	if nodes := strings.Split(nodesLine, ", "); len(nodes) < 3 {
		t.Fatalf("merged trace spans %d node(s) (%s), want >= 3", len(nodes), nodesLine)
	}

	var ledger strings.Builder
	if err := fetchClusterLeaks(&ledger, []string{addr}, false); err != nil {
		t.Fatal(err)
	}
	lo := ledger.String()
	t.Logf("merged leak ledger:\n%s", lo)
	if !strings.Contains(lo, "querier smoke-u") {
		t.Fatalf("ledger has no entry for the querier:\n%s", lo)
	}
	if !strings.Contains(lo, session) {
		t.Fatalf("ledger has no entry for session %q:\n%s", session, lo)
	}
	for _, want := range []string{"C_auditing", "C_query", telemetry.DiscResultCount} {
		if !strings.Contains(lo, want) {
			t.Fatalf("ledger missing %q:\n%s", want, lo)
		}
	}
}
