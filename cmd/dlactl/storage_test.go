package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"confaudit/internal/storage"
)

// fakeStorageServer serves the given Status at /debug/dla/storage, the
// way a dlad -pprof endpoint does.
func fakeStorageServer(t *testing.T, st storage.Status) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/dla/storage", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(st) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestStorageStatusRendersEngineShape(t *testing.T) {
	addr := fakeStorageServer(t, storage.Status{
		Backend:                storage.BackendDisk,
		Dir:                    "/data/P0",
		Records:                120,
		AppendedBytes:          8192,
		Fsyncs:                 40,
		Rotations:              3,
		Checkpoints:            2,
		RecoveryScannedRecords: 12,
		RecoveryHashedSegments: 3,
		Checkpoint:             &storage.CheckpointInfo{BaseSeq: 2, LastSeq: 4, Records: 100, Acc: "deadbeefdeadbeefdeadbeef"},
		Segments: []storage.SegmentInfo{
			{Seq: 4, Records: 80, Bytes: 4096, Sealed: true, Checkpointed: true, GLSNLo: 0x10, GLSNHi: 0x60},
			{Seq: 5, Records: 40, Bytes: 2048},
		},
		Quarantined: []storage.QuarantineInfo{
			{Seq: 3, Path: "seg-0000000000000003.log.bad", Reason: "crc mismatch", GLSNLo: 0x1, GLSNHi: 0xf},
		},
	})
	var out strings.Builder
	if err := fetchStorageStatus(&out, []string{addr}, false); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"backend=disk",
		"dir=/data/P0",
		"records=120",
		"checkpoint: base seq 2, through seq 4, 100 records",
		"seg 4: sealed+ckpt, 80 records",
		"glsn 10-60",
		"seg 5: active, 40 records",
		"QUARANTINED seg 3 (crc mismatch): glsn 1-f",
		"recovery: scanned 12 records, fast-verified 3 segments",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered status missing %q:\n%s", want, text)
		}
	}
}

func TestStorageStatusJSONRoundTrips(t *testing.T) {
	addr := fakeStorageServer(t, storage.Status{Backend: storage.BackendMemory, Records: 7})
	var out strings.Builder
	if err := fetchStorageStatus(&out, []string{addr}, true); err != nil {
		t.Fatal(err)
	}
	var st storage.Status
	if err := json.Unmarshal([]byte(out.String()), &st); err != nil {
		t.Fatal(err)
	}
	if st.Backend != storage.BackendMemory || st.Records != 7 {
		t.Fatalf("round-tripped %+v", st)
	}
}

func TestStorageStatusFailsWhenNoNodeAnswers(t *testing.T) {
	var out strings.Builder
	if err := fetchStorageStatus(&out, []string{"127.0.0.1:1"}, false); err == nil {
		t.Fatal("status with no reachable node succeeded")
	}
}
