package main

import (
	"context"
	"crypto/rand"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"confaudit/internal/chaos"
	"confaudit/internal/cluster"
	"confaudit/internal/ticket"
	"confaudit/internal/workload"
)

// TestIngestStatus drives the `dlactl ingest status` path end to end:
// a cluster with admission bounds takes a few writes, a debug server
// exposes one node's AdmissionStatus the way dlad does, and the fetch
// and render code must report the configured bounds and a non-zero
// admitted count — plus the disabled rendering for a node without
// bounds.
func TestIngestStatus(t *testing.T) {
	cc, err := chaos.New(rand.Reader, chaos.Options{
		Nodes: 3,
		Seed:  1,
		Admission: cluster.AdmissionConfig{
			RecordsPerSec:    10_000,
			MaxInflightBytes: 1 << 20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.StartAll(); err != nil {
		t.Fatal(err)
	}
	defer cc.StopAll()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cl, mb, err := cc.NewClient(ctx, "ing-u", "T-ing", ticket.OpWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close() //nolint:errcheck
	if err := cl.RegisterTicket(ctx); err != nil {
		t.Fatal(err)
	}
	events := workload.New(1).Transactions(cc.Schema, 8, 4)
	if _, err := cl.LogBatch(ctx, events); err != nil {
		t.Fatal(err)
	}

	node := cc.Node(cc.Boot.Roster[0])
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/dla/ingest", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(node.AdmissionStatus()) //nolint:errcheck
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// A second "node" with no admission bounds configured.
	off := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(cluster.AdmissionStatus{}) //nolint:errcheck
	}))
	defer off.Close()

	var out strings.Builder
	targets := []string{
		strings.TrimPrefix(srv.URL, "http://"),
		strings.TrimPrefix(off.URL, "http://"),
	}
	if err := fetchIngestStatus(&out, targets, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	t.Logf("ingest status:\n%s", got)
	for _, want := range []string{"admitted=1", "rate: 10000 records/sec", "inflight: 0/1048576 bytes", "admission disabled"} {
		if !strings.Contains(got, want) {
			t.Fatalf("ingest status output missing %q:\n%s", want, got)
		}
	}

	var js strings.Builder
	if err := fetchIngestStatus(&js, targets[:1], true); err != nil {
		t.Fatal(err)
	}
	var st cluster.AdmissionStatus
	if err := json.Unmarshal([]byte(js.String()), &st); err != nil {
		t.Fatalf("-json output is not an AdmissionStatus: %v\n%s", err, js.String())
	}
	if !st.Enabled || st.Admitted < 1 {
		t.Fatalf("unexpected status over JSON: %+v", st)
	}
}
