// Command dlactl is the DLA client: it issues tickets (given the
// issuer's provisioning file), registers them, logs event records,
// reads them back, and runs confidential auditing queries against a
// cluster started with dlad.
//
// Examples:
//
//	dlactl issue -dir provision -ticket-id T1 -holder u0 -ops WR -out t1.json
//	dlactl register -dir provision -id u0 -ticket t1.json
//	dlactl log -dir provision -id u0 -ticket t1.json id=U1 protocl=UDP C1=20
//	dlactl read -dir provision -id u0 -ticket t1.json -glsn 139aef78
//	dlactl query -dir provision -id aud -ticket ta.json -criteria 'C1 > 30'
//	dlactl agg -dir provision -id aud -ticket ta.json -criteria '*' -kind sum -attr C1
//	dlactl trace -addr 127.0.0.1:6060 q/aud/1
//	dlactl trace -addrs 127.0.0.1:6060,127.0.0.1:6061,127.0.0.1:6062 q/aud/1
//	dlactl leaks -addrs 127.0.0.1:6060,127.0.0.1:6061
//	dlactl storage status -addrs 127.0.0.1:6060,127.0.0.1:6061
//	dlactl ingest status -addrs 127.0.0.1:6060,127.0.0.1:6061
//	dlactl flight -addrs 127.0.0.1:6060,127.0.0.1:6061 -since 10m
//	dlactl top -addrs 127.0.0.1:6060,127.0.0.1:6061,127.0.0.1:6062
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/big"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"confaudit/internal/audit"
	"confaudit/internal/cluster"
	"confaudit/internal/crypto/accumulator"
	"confaudit/internal/integrity"
	"confaudit/internal/logmodel"
	"confaudit/internal/telemetry"
	"confaudit/internal/ticket"
	"confaudit/internal/transport"
)

// wireTicket is dlactl's on-disk ticket form.
type wireTicket struct {
	ID     string   `json:"id"`
	Holder string   `json:"holder"`
	Ops    []int    `json:"ops"`
	Sig    *big.Int `json:"sig"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlactl: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "issue":
		err = cmdIssue(args)
	case "register":
		err = withClient(args, nil, cmdRegister)
	case "log":
		err = withClient(args, nil, cmdLog)
	case "read":
		err = withClient(args, nil, cmdRead)
	case "query":
		err = withClient(args, nil, cmdQuery)
	case "agg":
		err = withClient(args, nil, cmdAgg)
	case "check":
		err = withClient(args, nil, cmdCheck)
	case "aclcheck":
		err = withClient(args, nil, cmdACLCheck)
	case "trace":
		err = cmdTrace(args)
	case "leaks":
		err = cmdLeaks(args)
	case "storage":
		err = cmdStorage(args)
	case "ingest":
		err = cmdIngest(args)
	case "flight":
		err = cmdFlight(args)
	case "top":
		err = cmdTop(args)
	default:
		usage()
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlactl issue|register|log|read|query|agg|check|aclcheck|trace|leaks|storage|ingest|flight|top [flags] [args]")
	os.Exit(2)
}

func cmdIssue(args []string) error {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "provision", "provisioning directory")
		ticketID = fs.String("ticket-id", "", "ticket ID (required)")
		holder   = fs.String("holder", "", "holder node ID (required)")
		ops      = fs.String("ops", "WR", "operations: any of W, R, D")
		out      = fs.String("out", "", "output ticket file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ticketID == "" || *holder == "" || *out == "" {
		return fmt.Errorf("-ticket-id, -holder, and -out are required")
	}
	ip, err := cluster.LoadIssuer(*dir)
	if err != nil {
		return err
	}
	issuer, err := ticket.NewIssuerFromKey(ip.Key)
	if err != nil {
		return err
	}
	var opList []ticket.Op
	for _, r := range strings.ToUpper(*ops) {
		switch r {
		case 'W':
			opList = append(opList, ticket.OpWrite)
		case 'R':
			opList = append(opList, ticket.OpRead)
		case 'D':
			opList = append(opList, ticket.OpDelete)
		default:
			return fmt.Errorf("unknown op %q", r)
		}
	}
	tk, err := issuer.Issue(*ticketID, *holder, opList...)
	if err != nil {
		return err
	}
	wt := wireTicket{ID: tk.ID, Holder: tk.Holder, Sig: tk.Sig}
	for _, o := range tk.Ops {
		wt.Ops = append(wt.Ops, int(o))
	}
	data, err := json.MarshalIndent(wt, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o600); err != nil {
		return err
	}
	log.Printf("ticket %s (%s) for %s written to %s", tk.ID, tk.OpsString(), tk.Holder, *out)
	return nil
}

// clientEnv is everything a connected subcommand needs.
type clientEnv struct {
	ctx    context.Context
	common *cluster.CommonProvision
	client *cluster.Client
	mb     *transport.Mailbox
	fs     *flag.FlagSet
}

// withClient parses shared flags, connects to the cluster, and runs fn.
func withClient(args []string, _ any, fn func(*clientEnv) error) error {
	fs := flag.NewFlagSet("dlactl", flag.ExitOnError)
	var (
		dir        = fs.String("dir", "provision", "provisioning directory")
		id         = fs.String("id", "", "this client's node ID (required)")
		ticketPath = fs.String("ticket", "", "ticket file (required)")
		listen     = fs.String("listen", "127.0.0.1:0", "client listen address")
		timeout    = fs.Duration("timeout", time.Minute, "operation timeout")
	)
	// Subcommand-specific flags are registered up front so one FlagSet
	// serves every connected subcommand.
	fs.String("glsn", "", "glsn for read")
	fs.String("criteria", "", "auditing criteria for query/agg")
	fs.String("kind", "count", "aggregate kind: count|sum|max|min|avg")
	fs.String("attr", "", "aggregate attribute")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *ticketPath == "" {
		return fmt.Errorf("-id and -ticket are required")
	}
	common, err := cluster.LoadCommon(*dir)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*ticketPath)
	if err != nil {
		return err
	}
	var wt wireTicket
	if err := json.Unmarshal(data, &wt); err != nil {
		return err
	}
	tk := &ticket.Ticket{ID: wt.ID, Holder: wt.Holder, Sig: wt.Sig}
	for _, o := range wt.Ops {
		tk.Ops = append(tk.Ops, ticket.Op(o))
	}
	part, err := logmodel.FromSpec(common.Partition)
	if err != nil {
		return err
	}
	accParams, err := restoreAcc(common)
	if err != nil {
		return err
	}
	addrs := make(map[string]string, len(common.Addresses)+1)
	for k, v := range common.Addresses {
		addrs[k] = v
	}
	addrs[*id] = *listen
	tcp := transport.NewTCPNetwork(addrs)
	ep, err := tcp.Endpoint(*id)
	if err != nil {
		return err
	}
	mb := transport.NewMailbox(ep)
	defer mb.Close() //nolint:errcheck
	client, err := cluster.OpenClient(mb, cluster.ClientConfig{
		Roster:      common.Roster,
		Partition:   part,
		Accumulator: accParams,
		Ticket:      tk,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	env := &clientEnv{ctx: ctx, common: common, client: client, mb: mb, fs: fs}
	return fn(env)
}

func restoreAcc(common *cluster.CommonProvision) (*accumulator.Params, error) {
	p := &accumulator.Params{N: common.AccN, X0: common.AccX0}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func cmdRegister(env *clientEnv) error {
	if err := env.client.RegisterTicket(env.ctx); err != nil {
		return err
	}
	log.Printf("ticket %s registered on %v", env.client.Ticket().ID, env.common.Roster)
	return nil
}

func cmdLog(env *clientEnv) error {
	values := make(map[logmodel.Attr]logmodel.Value)
	for _, kv := range env.fs.Args() {
		i := strings.IndexByte(kv, '=')
		if i <= 0 {
			return fmt.Errorf("bad attribute %q, want key=value", kv)
		}
		k, v := kv[:i], kv[i+1:]
		values[logmodel.Attr(k)] = parseValue(v)
	}
	if len(values) == 0 {
		return fmt.Errorf("no attributes given")
	}
	g, err := env.client.Log(env.ctx, values)
	if err != nil {
		return err
	}
	log.Printf("logged under glsn %s", g)
	return nil
}

func parseValue(s string) logmodel.Value {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return logmodel.Int(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return logmodel.Float(f)
	}
	return logmodel.String(s)
}

func cmdRead(env *clientEnv) error {
	gs := env.fs.Lookup("glsn").Value.String()
	if gs == "" {
		return fmt.Errorf("-glsn is required")
	}
	g, err := logmodel.ParseGLSN(gs)
	if err != nil {
		return err
	}
	rec, err := env.client.Read(env.ctx, g)
	if err != nil {
		return err
	}
	log.Printf("glsn %s:", rec.GLSN)
	for _, a := range rec.Attrs() {
		log.Printf("  %s = %s", a, rec.Values[a].Render())
	}
	return nil
}

func cmdQuery(env *clientEnv) error {
	criteria := env.fs.Lookup("criteria").Value.String()
	if criteria == "" {
		return fmt.Errorf("-criteria is required")
	}
	auditor := audit.NewAuditor(env.mb, env.common.Roster[0], env.client.Ticket().ID)
	glsns, err := auditor.Query(env.ctx, criteria)
	if err != nil {
		return err
	}
	log.Printf("%d matching records:", len(glsns))
	for _, g := range glsns {
		log.Printf("  %s", g)
	}
	return nil
}

func cmdCheck(env *clientEnv) error {
	rep, err := integrity.RequestCheck(env.ctx, env.mb, env.common.Roster[0], "ctl-check", nil)
	if err != nil {
		return err
	}
	log.Printf("integrity sweep: %d records checked", rep.Checked)
	if rep.Clean() {
		log.Printf("all records intact")
		return nil
	}
	for _, g := range rep.Corrupted {
		log.Printf("CORRUPTED: %s", g)
	}
	for g, err := range rep.Errors {
		log.Printf("ERROR %s: %v", g, err)
	}
	return nil
}

func cmdACLCheck(env *clientEnv) error {
	rep, err := cluster.RequestACLCheck(env.ctx, env.mb, env.common.Roster[0], "ctl-aclcheck")
	if err != nil {
		return err
	}
	log.Printf("access-control tables consistent: %v", rep.Consistent)
	for node, v := range rep.Verdicts {
		log.Printf("  %s: ok=%v own=%d common=%d %s", node, v.OK, v.OwnSize, v.CommonSize, v.Error)
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "dlad -pprof address serving /debug/dla")
	addrs := fs.String("addrs", "", "comma-separated dlad -pprof addresses; fan out, merge per-node fragments, render one cluster-wide tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrs != "" {
		session := fs.Arg(0)
		if session == "" {
			return fmt.Errorf("trace -addrs requires a session argument")
		}
		return fetchClusterTrace(os.Stdout, splitAddrs(*addrs), session)
	}
	// With no session argument, list the sessions the node has traces for.
	return fetchTrace(os.Stdout, "http://"+*addr, fs.Arg(0))
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// fetchTrace pulls a trace from a dlad debug endpoint and renders the
// span tree (or, with an empty session, the stored session list).
func fetchTrace(w io.Writer, baseURL, session string) error {
	if session == "" {
		resp, err := http.Get(baseURL + "/debug/dla/trace/")
		if err != nil {
			return err
		}
		defer resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("trace endpoint: %s", resp.Status)
		}
		_, err = io.Copy(w, resp.Body)
		return err
	}
	view, err := fetchTraceView(baseURL, session)
	if err != nil {
		return err
	}
	_, err = io.WriteString(w, telemetry.FormatTree(view))
	return err
}

// fetchTraceView pulls one node's trace fragment for a session.
func fetchTraceView(baseURL, session string) (telemetry.TraceView, error) {
	resp, err := http.Get(baseURL + "/debug/dla/trace/" + session)
	if err != nil {
		return telemetry.TraceView{}, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode == http.StatusNotFound {
		return telemetry.TraceView{}, fmt.Errorf("no trace for session %q (run `dlactl trace` for the stored sessions)", session)
	}
	if resp.StatusCode != http.StatusOK {
		return telemetry.TraceView{}, fmt.Errorf("trace endpoint: %s", resp.Status)
	}
	var view telemetry.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return telemetry.TraceView{}, fmt.Errorf("decoding trace: %w", err)
	}
	return view, nil
}

// fetchClusterTrace fans out to every node's debug port, merges the
// per-node trace fragments by span ID (with clock-skew normalization),
// and renders the single cluster-wide tree. Nodes without a fragment
// for the session are skipped with a warning: a query does not
// necessarily touch every node.
func fetchClusterTrace(w io.Writer, addrs []string, session string) error {
	var fragments []telemetry.TraceView
	for _, a := range addrs {
		view, err := fetchTraceView("http://"+a, session)
		if err != nil {
			log.Printf("warning: %s: %v", a, err)
			continue
		}
		fragments = append(fragments, view)
	}
	if len(fragments) == 0 {
		return fmt.Errorf("no node returned a trace for session %q", session)
	}
	merged := telemetry.MergeViews(session, fragments)
	_, err := io.WriteString(w, telemetry.FormatTree(merged))
	return err
}

// cmdLeaks fetches per-node leak ledgers, merges them into one cluster
// view, and renders the per-querier confidentiality spend.
func cmdLeaks(args []string) error {
	fs := flag.NewFlagSet("leaks", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "dlad -pprof address serving /debug/dla")
	addrs := fs.String("addrs", "", "comma-separated dlad -pprof addresses; fan out and merge per-node ledgers")
	asJSON := fs.Bool("json", false, "emit the merged LedgerSnapshot as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := splitAddrs(*addrs)
	if len(targets) == 0 {
		targets = []string{*addr}
	}
	return fetchClusterLeaks(os.Stdout, targets, *asJSON)
}

// fetchClusterLeaks fans out to every node's /debug/dla/leaks, merges
// the per-node ledgers, and renders (or JSON-encodes) the cluster view.
func fetchClusterLeaks(w io.Writer, targets []string, asJSON bool) error {
	var snaps []telemetry.LedgerSnapshot
	for _, a := range targets {
		resp, err := http.Get("http://" + a + "/debug/dla/leaks")
		if err != nil {
			log.Printf("warning: %s: %v", a, err)
			continue
		}
		var snap telemetry.LedgerSnapshot
		decErr := json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close() //nolint:errcheck
		if decErr != nil {
			log.Printf("warning: %s: decoding ledger: %v", a, decErr)
			continue
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) == 0 {
		return fmt.Errorf("no node returned a leak ledger")
	}
	merged := telemetry.MergeLedgers(snaps)
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(merged)
	}
	_, err := io.WriteString(w, telemetry.FormatLedger(merged))
	return err
}

func cmdAgg(env *clientEnv) error {
	criteria := env.fs.Lookup("criteria").Value.String()
	if criteria == "" {
		return fmt.Errorf("-criteria is required")
	}
	kind := audit.AggKind(env.fs.Lookup("kind").Value.String())
	attr := logmodel.Attr(env.fs.Lookup("attr").Value.String())
	auditor := audit.NewAuditor(env.mb, env.common.Roster[0], env.client.Ticket().ID)
	v, err := auditor.Aggregate(env.ctx, criteria, kind, attr)
	if err != nil {
		return err
	}
	log.Printf("%s(%s) over %q = %v", kind, attr, criteria, v)
	return nil
}
