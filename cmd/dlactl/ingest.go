package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"confaudit/internal/cluster"
)

// cmdIngest dispatches `dlactl ingest <verb>`. The only verb so far is
// status: fetch /debug/dla/ingest from one or more dlad -pprof
// addresses and render each node's admission boundary — configured
// bounds, current bucket fill and inflight bytes, and the
// admitted/rejected split that shows whether writers are being shed.
func cmdIngest(args []string) error {
	if len(args) < 1 || args[0] != "status" {
		return fmt.Errorf("usage: dlactl ingest status [-addr host:port | -addrs a,b,c] [-json]")
	}
	fs := flag.NewFlagSet("ingest status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "dlad -pprof address serving /debug/dla")
	addrs := fs.String("addrs", "", "comma-separated dlad -pprof addresses; fan out and report every node")
	asJSON := fs.Bool("json", false, "emit each node's AdmissionStatus as JSON")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	targets := splitAddrs(*addrs)
	if len(targets) == 0 {
		targets = []string{*addr}
	}
	return fetchIngestStatus(os.Stdout, targets, *asJSON)
}

// fetchIngestStatus pulls every target's admission status. Unreachable
// nodes are warned about and skipped; the command fails only if no node
// answered at all.
func fetchIngestStatus(w io.Writer, targets []string, asJSON bool) error {
	ok := 0
	for _, a := range targets {
		st, err := fetchOneIngestStatus("http://" + a)
		if err != nil {
			log.Printf("warning: %s: %v", a, err)
			continue
		}
		ok++
		if asJSON {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(st); err != nil {
				return err
			}
			continue
		}
		if _, err := io.WriteString(w, formatIngestStatus(a, st)); err != nil {
			return err
		}
	}
	if ok == 0 {
		return fmt.Errorf("no node returned ingest status")
	}
	return nil
}

func fetchOneIngestStatus(baseURL string) (cluster.AdmissionStatus, error) {
	resp, err := http.Get(baseURL + "/debug/dla/ingest")
	if err != nil {
		return cluster.AdmissionStatus{}, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return cluster.AdmissionStatus{}, fmt.Errorf("ingest endpoint: %s", resp.Status)
	}
	var st cluster.AdmissionStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return cluster.AdmissionStatus{}, fmt.Errorf("decoding ingest status: %w", err)
	}
	return st, nil
}

// formatIngestStatus renders one node's admission boundary for the
// terminal.
func formatIngestStatus(addr string, st cluster.AdmissionStatus) string {
	var b strings.Builder
	if !st.Enabled {
		fmt.Fprintf(&b, "%s: admission disabled (every store admitted)\n", addr)
		return b.String()
	}
	fmt.Fprintf(&b, "%s: admitted=%d rejected=%d\n", addr, st.Admitted, st.Rejected)
	if st.RecordsPerSec > 0 {
		fmt.Fprintf(&b, "  rate: %.0f records/sec, bucket %.0f/%d tokens\n",
			st.RecordsPerSec, st.Tokens, st.Burst)
	}
	if st.MaxInflightBytes > 0 {
		fmt.Fprintf(&b, "  inflight: %d/%d bytes\n", st.InflightBytes, st.MaxInflightBytes)
	}
	return b.String()
}
