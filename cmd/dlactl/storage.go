package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"confaudit/internal/storage"
)

// cmdStorage dispatches `dlactl storage <verb>`. The only verb so far
// is status: fetch /debug/dla/storage from one or more dlad -pprof
// addresses and render each node's engine shape.
func cmdStorage(args []string) error {
	if len(args) < 1 || args[0] != "status" {
		return fmt.Errorf("usage: dlactl storage status [-addr host:port | -addrs a,b,c] [-json]")
	}
	fs := flag.NewFlagSet("storage status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "dlad -pprof address serving /debug/dla")
	addrs := fs.String("addrs", "", "comma-separated dlad -pprof addresses; fan out and report every node")
	asJSON := fs.Bool("json", false, "emit each node's Status as JSON")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	targets := splitAddrs(*addrs)
	if len(targets) == 0 {
		targets = []string{*addr}
	}
	return fetchStorageStatus(os.Stdout, targets, *asJSON)
}

// fetchStorageStatus pulls every target's engine status. Unreachable
// nodes are warned about and skipped; the command fails only if no node
// answered at all.
func fetchStorageStatus(w io.Writer, targets []string, asJSON bool) error {
	ok := 0
	for _, a := range targets {
		st, err := fetchOneStorageStatus("http://" + a)
		if err != nil {
			log.Printf("warning: %s: %v", a, err)
			continue
		}
		ok++
		if asJSON {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(st); err != nil {
				return err
			}
			continue
		}
		if _, err := io.WriteString(w, formatStorageStatus(a, st)); err != nil {
			return err
		}
	}
	if ok == 0 {
		return fmt.Errorf("no node returned storage status")
	}
	return nil
}

func fetchOneStorageStatus(baseURL string) (storage.Status, error) {
	resp, err := http.Get(baseURL + "/debug/dla/storage")
	if err != nil {
		return storage.Status{}, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return storage.Status{}, fmt.Errorf("storage endpoint: %s", resp.Status)
	}
	var st storage.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return storage.Status{}, fmt.Errorf("decoding storage status: %w", err)
	}
	return st, nil
}

// formatStorageStatus renders one node's Status for the terminal.
func formatStorageStatus(addr string, st storage.Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: backend=%s", addr, st.Backend)
	if st.Dir != "" {
		fmt.Fprintf(&b, " dir=%s", st.Dir)
	}
	fmt.Fprintf(&b, " records=%d appended=%dB fsyncs=%d rotations=%d checkpoints=%d\n",
		st.Records, st.AppendedBytes, st.Fsyncs, st.Rotations, st.Checkpoints)
	if st.Failed != "" {
		fmt.Fprintf(&b, "  FAILED: %s\n", st.Failed)
	}
	if st.RecoveryScannedRecords > 0 || st.RecoveryHashedSegments > 0 {
		fmt.Fprintf(&b, "  recovery: scanned %d records, fast-verified %d segments\n",
			st.RecoveryScannedRecords, st.RecoveryHashedSegments)
	}
	if cp := st.Checkpoint; cp != nil {
		acc := cp.Acc
		if len(acc) > 16 {
			acc = acc[:16] + "…"
		}
		fmt.Fprintf(&b, "  checkpoint: base seq %d, through seq %d, %d records, acc %s\n",
			cp.BaseSeq, cp.LastSeq, cp.Records, acc)
	}
	for _, s := range st.Segments {
		state := "active"
		if s.Sealed {
			state = "sealed"
		}
		if s.Checkpointed {
			state += "+ckpt"
		}
		fmt.Fprintf(&b, "  seg %d: %s, %d records, %d bytes", s.Seq, state, s.Records, s.Bytes)
		if s.GLSNLo != 0 || s.GLSNHi != 0 {
			fmt.Fprintf(&b, ", glsn %x-%x", s.GLSNLo, s.GLSNHi)
		}
		b.WriteByte('\n')
	}
	for _, q := range st.Quarantined {
		fmt.Fprintf(&b, "  QUARANTINED seg %d (%s): %s\n", q.Seq, q.Reason, q.Extent())
	}
	return b.String()
}
