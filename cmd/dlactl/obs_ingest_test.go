package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"confaudit/internal/logmodel"
	"confaudit/internal/telemetry"
	"confaudit/pkg/dla"
)

// Sentinel record content for the redaction sweep: nothing the ingest
// observability surface may legitimately emit contains a space or a
// '#', so any leak fails the substring checks below.
const (
	obsSecretUser  = "zzsecret ingest#1"
	obsSecretProto = "zzsecret ingest#2"
)

// TestObsIngestSmoke is the `make obs-ingest-smoke` gate: a 3-node
// durable cluster takes a streaming appender burst, then the whole
// ingest observability loop is asserted — non-zero stage histograms
// for every pipeline stage, ordered watermarks, a flight event
// retrievable over /debug/dla/flight and rendered by `dlactl flight`,
// and a `dlactl top` frame with one row per node — with a redaction
// sweep over everything an operator would read.
func TestObsIngestSmoke(t *testing.T) {
	telemetry.M.Reset()
	telemetry.F.Reset()
	t.Cleanup(telemetry.F.Reset)

	schema, err := logmodel.NewSchema([]logmodel.Attr{"user", "proto", "ratio"})
	if err != nil {
		t.Fatal(err)
	}
	part, err := logmodel.NewPartition(schema, []string{"N0", "N1", "N2"}, map[string][]logmodel.Attr{
		"N0": {"user"}, "N1": {"proto"}, "N2": {"ratio"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// DataDir makes the nodes journal through the WAL, so the fsync and
	// encode/stage phase histograms record real work.
	cl, err := dla.Deploy(dla.ClusterOptions{Partition: part, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	s, err := dla.Connect(ctx, cl, dla.SessionConfig{ID: "obs-u", TicketID: "T-obs"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck

	// A burst through the streaming path: small batches so several seal
	// / reserve / store rounds run, with sentinel content throughout.
	ap, err := s.Appender(ctx, dla.AppendOptions{MaxBatchRecords: 8, Linger: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var acks []*dla.Ack
	for i := 0; i < 48; i++ {
		ack, err := ap.Append(ctx, map[dla.Attr]dla.Value{
			"user":  dla.String(obsSecretUser),
			"proto": dla.String(obsSecretProto),
			"ratio": dla.Float(float64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		acks = append(acks, ack)
	}
	if err := ap.Close(ctx); err != nil {
		t.Fatal(err)
	}
	for i, ack := range acks {
		if _, err := ack.Wait(ctx); err != nil {
			t.Fatalf("append %d not acked: %v", i, err)
		}
	}

	// Every pipeline stage must have recorded observations: client-side
	// seal wait, glsn-range reservation, and per-round store RTT; node-
	// side fan-out decode and ack turnaround; WAL encode/stage/fsync.
	snap := telemetry.M.Snapshot()
	for _, h := range []string{
		telemetry.HistIngestSealWait,
		telemetry.HistIngestReserve,
		telemetry.HistIngestStoreRTT,
		telemetry.HistIngestDecode,
		telemetry.HistIngestAckTurn,
		telemetry.HistWALEncode,
		telemetry.HistWALStage,
		telemetry.HistWALFsync,
	} {
		if hs, ok := snap.Histograms[h]; !ok || hs.Count < 1 {
			t.Errorf("stage histogram %s recorded nothing for the appender burst", h)
		}
	}
	// Watermarks must be ordered: a glsn is reserved before it is
	// durable, durable before the client counts it acked.
	reserved := snap.Gauges[telemetry.GaugeGLSNReserved]
	durable := snap.Gauges[telemetry.GaugeGLSNDurable]
	acked := snap.Gauges[telemetry.GaugeGLSNAcked]
	if !(reserved >= durable && durable >= acked && acked > 0) {
		t.Errorf("watermarks out of order: reserved=%d durable=%d acked=%d", reserved, durable, acked)
	}

	// A synthetic anomaly lands in the flight recorder the way a real
	// recording site would write it — schema fields only.
	telemetry.F.Record(telemetry.FlightEvent{
		Kind: telemetry.FlightFsyncStall, Node: "N1", DurMS: 142.5, Outcome: "ok",
	})

	// Three debug servers stand in for the three dlad -pprof ports (the
	// in-process deployment shares one registry, as documented on F/M).
	mux := http.NewServeMux()
	telemetry.Mount(mux)
	var targets []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(mux)
		defer srv.Close()
		targets = append(targets, strings.TrimPrefix(srv.URL, "http://"))
	}

	// The event is reachable over the raw endpoint...
	resp, err := http.Get("http://" + targets[0] + "/debug/dla/flight")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		t.Fatal(err)
	}
	var fsnap telemetry.FlightSnapshot
	if err := json.Unmarshal(body, &fsnap); err != nil {
		t.Fatalf("/debug/dla/flight is not a FlightSnapshot: %v", err)
	}
	if len(fsnap.Events) < 1 {
		t.Fatal("/debug/dla/flight returned no events")
	}

	// ...and through the `dlactl flight -addrs` fan-out and renderer.
	var flightOut strings.Builder
	if err := fetchClusterFlight(&flightOut, targets, time.Time{}, false); err != nil {
		t.Fatal(err)
	}
	flightText := flightOut.String()
	t.Logf("dlactl flight:\n%s", flightText)
	if !strings.Contains(flightText, telemetry.FlightFsyncStall) {
		t.Errorf("flight output missing the recorded %s event:\n%s", telemetry.FlightFsyncStall, flightText)
	}
	if !strings.Contains(flightText, "142.50") {
		t.Errorf("flight output missing the event duration:\n%s", flightText)
	}

	// `dlactl top`: one row per polled node, and a second frame so the
	// rate column exercises the counter delta path.
	var topOut strings.Builder
	prev, err := topFrame(&topOut, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topFrame(&topOut, targets, prev); err != nil {
		t.Fatal(err)
	}
	topText := topOut.String()
	t.Logf("dlactl top (two frames):\n%s", topText)
	for _, a := range targets {
		if got := strings.Count(topText, a); got != 2 {
			t.Errorf("top frames mention node %s %d times, want one row per frame:\n%s", a, got, topText)
		}
	}
	if strings.Count(topText, "NODE") != 2 {
		t.Errorf("expected two table headers:\n%s", topText)
	}

	// Redaction sweep: nothing an operator reads — the flight JSON, the
	// rendered flight timeline, the top table, the prom exposition —
	// may carry record content.
	var promBuf strings.Builder
	telemetry.WritePrometheus(&promBuf, snap)
	for i, surface := range []string{string(body), flightText, topText, promBuf.String()} {
		for _, leak := range []string{obsSecretUser, obsSecretProto, "zzsecret", "ingest#"} {
			if strings.Contains(surface, leak) {
				t.Errorf("ingest observability surface %d leaks %q:\n%.2000s", i, leak, surface)
			}
		}
	}
}
