package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"confaudit/internal/telemetry"
)

// cmdFlight fetches the flight recorder — the bounded ring of anomaly
// events (breaker trips, admission sheds, journal poisonings, fsync
// stalls, …) every node keeps — from one or more dlad -pprof
// addresses and renders the merged incident timeline.
func cmdFlight(args []string) error {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:6060", "dlad -pprof address serving /debug/dla")
	addrs := fs.String("addrs", "", "comma-separated dlad -pprof addresses; fan out and merge every node's events")
	since := fs.Duration("since", 0, "only events recorded within this window (e.g. 10m; 0 means everything retained)")
	asJSON := fs.Bool("json", false, "emit each node's FlightSnapshot as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := splitAddrs(*addrs)
	if len(targets) == 0 {
		targets = []string{*addr}
	}
	var cutoff time.Time
	if *since > 0 {
		cutoff = time.Now().Add(-*since)
	}
	return fetchClusterFlight(os.Stdout, targets, cutoff, *asJSON)
}

// fetchClusterFlight pulls every target's flight snapshot, merges the
// events into one time-ordered incident log, and renders it.
// Unreachable nodes are warned about and skipped; the command fails
// only if no node answered at all.
func fetchClusterFlight(w io.Writer, targets []string, cutoff time.Time, asJSON bool) error {
	var events []telemetry.FlightEvent
	var dropped uint64
	ok := 0
	for _, a := range targets {
		snap, err := fetchOneFlight("http://"+a, cutoff)
		if err != nil {
			log.Printf("warning: %s: %v", a, err)
			continue
		}
		ok++
		if asJSON {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				return err
			}
			continue
		}
		events = append(events, snap.Events...)
		dropped += snap.Dropped
	}
	if ok == 0 {
		return fmt.Errorf("no node returned a flight snapshot")
	}
	if asJSON {
		return nil
	}
	_, err := io.WriteString(w, formatFlightEvents(events, dropped))
	return err
}

// fetchOneFlight pulls one node's /debug/dla/flight snapshot,
// filtering server-side when a cutoff is set.
func fetchOneFlight(baseURL string, cutoff time.Time) (telemetry.FlightSnapshot, error) {
	u := baseURL + "/debug/dla/flight"
	if !cutoff.IsZero() {
		u += "?since=" + url.QueryEscape(cutoff.Format(time.RFC3339Nano))
	}
	resp, err := http.Get(u)
	if err != nil {
		return telemetry.FlightSnapshot{}, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return telemetry.FlightSnapshot{}, fmt.Errorf("flight endpoint: %s", resp.Status)
	}
	var snap telemetry.FlightSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return telemetry.FlightSnapshot{}, fmt.Errorf("decoding flight snapshot: %w", err)
	}
	return snap, nil
}

// formatFlightEvents renders the merged incident timeline, oldest
// first. Every column is flight-schema data: timestamps, constant
// kinds, node IDs, glsn positions, counts, durations, outcome flags.
func formatFlightEvents(events []telemetry.FlightEvent, dropped uint64) string {
	var b strings.Builder
	if len(events) == 0 {
		b.WriteString("no flight events recorded\n")
		return b.String()
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	fmt.Fprintf(&b, "%-15s %-18s %-6s %-6s %-10s %6s %9s %s\n",
		"TIME", "KIND", "NODE", "PEER", "GLSN", "COUNT", "DUR(ms)", "OUTCOME")
	for _, e := range events {
		glsn, count, dur := "-", "-", "-"
		if e.GLSN != 0 {
			glsn = fmt.Sprintf("%x", e.GLSN)
		}
		if e.Count != 0 {
			count = fmt.Sprintf("%d", e.Count)
		}
		if e.DurMS != 0 {
			dur = fmt.Sprintf("%.2f", e.DurMS)
		}
		fmt.Fprintf(&b, "%-15s %-18s %-6s %-6s %-10s %6s %9s %s\n",
			e.Time.Format("15:04:05.000"), e.Kind, orDash(e.Node), orDash(e.Peer),
			glsn, count, dur, orDash(e.Outcome))
	}
	if dropped > 0 {
		fmt.Fprintf(&b, "(%d older events dropped by the bounded ring)\n", dropped)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
